"""Replay recorded wire exchanges through the simulator.

The simulator is this repo's oracle: every protocol behaviour in-tree is
specified against its deterministic delivery.  This module is the entry
point that lets *other* planes borrow that oracle — most importantly the
real-socket serving plane (``repro.serve``), whose loopback differential
mode records what a live endpoint received and re-runs the same frames,
at the same relative times, through a scripted simulator host.

The scripted host is intentionally minimal: a perfect (lossless,
zero-delay) link between a ``client`` node that plays back the recorded
inbound frames and a ``server`` node hosting the behaviour under test,
with a :class:`~repro.netsim.capture.Capture` tapped on the return
channel so the oracle's responses come out as a byte-exact transcript.
Loss, reordering and duplication need no modelling here — they already
happened on the real network, and their effects are present in the
recorded inbound sequence itself.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.netsim.capture import Capture
from repro.netsim.channel import ChannelConfig
from repro.netsim.node import DuplexLink, Node
from repro.netsim.simulator import Simulator

#: One recorded inbound frame: (relative time, wire bytes).
TimedFrame = Tuple[float, bytes]


class ScriptedHost:
    """A simulator hosting one endpoint fed from a recorded script.

    Parameters
    ----------
    specs:
        Packet specs used to render the response transcript.
    seed:
        Seed for the (perfect) link's RNG streams; kept for parity with
        live hosts, it cannot affect delivery on a lossless channel.
    """

    def __init__(self, specs: Sequence[Any] = (), seed: int = 0) -> None:
        self.sim = Simulator()
        self.client = Node(self.sim, "client")
        self.server = Node(self.sim, "server")
        # A perfect channel: the adversity already happened on the real
        # network; the oracle must add none of its own.
        self.link = DuplexLink(
            self.sim,
            self.client,
            self.server,
            ChannelConfig(delay=0.0),
            seed=seed,
        )
        self.capture = Capture(specs=list(specs))
        self.capture.tap(self.link.backward)  # server -> client responses

    def host(self, handler: Callable[[bytes], None]) -> Callable[[bytes], None]:
        """Install the server-side frame handler; returns its send function.

        The handler receives each delivered inbound frame; the returned
        callable transmits a response frame toward the client (and into
        the capture tap).
        """
        self.server.on_receive(lambda frame, sender: handler(frame))
        return lambda frame: self.server.send("client", frame)

    def feed(self, frames: Sequence[TimedFrame]) -> None:
        """Script the inbound side: each frame enters the wire at its time.

        Times are relative to the start of the exchange and must be
        non-decreasing (they come from a monotonic clock on the live
        side); equal times preserve recorded order, exactly as the
        simulator's tie-breaker guarantees.
        """
        last = 0.0
        for when, data in frames:
            if when < last:
                raise ValueError(
                    f"inbound script goes backwards: {when} after {last}"
                )
            last = when
            self.sim.at(when, lambda d=data: self.client.send("server", d))

    def run(self, time_limit: float = 1_000_000.0) -> List[bytes]:
        """Run the exchange to quiescence; returns the response transcript."""
        self.sim.run(until=None, max_events=10_000_000)
        if self.sim.now > time_limit:
            raise RuntimeError(
                f"scripted replay ran past {time_limit} virtual seconds"
            )
        return [frame.data for frame in self.capture.frames]


def replay_frames(
    frames: Sequence[TimedFrame],
    handler_factory: Callable[[Callable[[bytes], None]], Callable[[bytes], None]],
    specs: Sequence[Any] = (),
    seed: int = 0,
) -> List[bytes]:
    """One-call replay: script ``frames`` at a handler, return its responses.

    ``handler_factory`` receives a ``send`` callable and returns the
    per-frame handler — the same shape the serving plane's session apps
    are built from, so a live behaviour replays without adaptation.
    """
    host = ScriptedHost(specs=specs, seed=seed)
    send = host.host(lambda frame: handler(frame))
    handler = handler_factory(send)
    host.feed(frames)
    return host.run()
