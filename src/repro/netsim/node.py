"""Nodes and duplex links: the simulator's host abstraction.

A :class:`Node` is an addressable endpoint with a receive handler; a
:class:`DuplexLink` wires two nodes together with two independent
:class:`~repro.netsim.channel.Channel` instances (each direction gets its
own fault model and RNG stream, as on a real asymmetric path).
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, Optional

from repro.netsim.channel import Channel, ChannelConfig
from repro.netsim.simulator import Simulator

ReceiveHandler = Callable[[bytes, str], None]


class Node:
    """A named endpoint that can send to, and receive from, its peers."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._handler: Optional[ReceiveHandler] = None
        self._outgoing: Dict[str, Channel] = {}

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Install the receive handler: ``handler(frame, sender_name)``."""
        self._handler = handler

    def attach_outgoing(self, peer_name: str, channel: Channel) -> None:
        """Register the channel used to reach ``peer_name``."""
        self._outgoing[peer_name] = channel

    @property
    def peers(self) -> tuple:
        """Names of nodes this node can send to."""
        return tuple(sorted(self._outgoing))

    def send(self, peer_name: str, frame: bytes) -> None:
        """Send a frame toward a peer through the attached channel."""
        try:
            channel = self._outgoing[peer_name]
        except KeyError:
            raise KeyError(
                f"node {self.name!r} has no link to {peer_name!r}; "
                f"known peers: {sorted(self._outgoing)}"
            ) from None
        channel.send(frame)

    def _receive(self, frame: bytes, sender_name: str) -> None:
        if self._handler is None:
            return  # unhandled frames are dropped, as on a closed port
        self._handler(frame, sender_name)

    def __repr__(self) -> str:
        return f"Node({self.name!r})"


class DuplexLink:
    """A bidirectional link: two channels, two RNG streams.

    Parameters
    ----------
    sim, a, b:
        Simulator and the two endpoints.
    config:
        Fault model for the a->b direction (and b->a unless
        ``reverse_config`` overrides it).
    seed:
        Base seed; each direction derives its own stream so traffic in one
        direction never perturbs the other's fault sequence.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Node,
        b: Node,
        config: ChannelConfig,
        seed: int = 0,
        reverse_config: Optional[ChannelConfig] = None,
    ) -> None:
        self.a = a
        self.b = b
        # Stream seeds must not depend on str.__hash__ (randomized per
        # process); CRC32 of a deterministic key keeps runs reproducible.
        forward_seed = zlib.crc32(f"{seed}:{a.name}->{b.name}".encode())
        backward_seed = zlib.crc32(f"{seed}:{b.name}->{a.name}".encode())
        self.forward = Channel(
            sim,
            config,
            random.Random(forward_seed),
            name=f"{a.name}->{b.name}",
        )
        self.backward = Channel(
            sim,
            reverse_config or config,
            random.Random(backward_seed),
            name=f"{b.name}->{a.name}",
        )
        self.forward.connect(lambda frame: b._receive(frame, a.name))
        self.backward.connect(lambda frame: a._receive(frame, b.name))
        a.attach_outgoing(b.name, self.forward)
        b.attach_outgoing(a.name, self.backward)

    def __repr__(self) -> str:
        return f"DuplexLink({self.a.name!r} <-> {self.b.name!r})"
