"""Point-to-point channels with configurable fault models.

A :class:`Channel` carries byte frames one way between two endpoints,
applying — in this order — loss, duplication, corruption, and a delay made
of a fixed latency plus jitter.  Reordering arises naturally from jitter
(two frames' delays can cross) and can be intensified with
``reorder_rate``, which gives a frame an extra random delay.

All randomness comes from a ``random.Random`` owned by the channel and
seeded by the caller: runs are bit-for-bit reproducible, which the
correctness experiments (E1) and the benchmark suite depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.simulator import Simulator
from repro.obs.instrument import Instrumentation


@dataclass(frozen=True)
class ChannelConfig:
    """Fault and delay model for one direction of a link.

    Attributes
    ----------
    loss_rate:
        Probability a frame is silently dropped.
    corruption_rate:
        Probability a delivered frame has one random bit flipped.
    duplication_rate:
        Probability a frame is delivered twice (the copy gets its own
        independent delay, so duplicates may also arrive reordered).
    reorder_rate:
        Probability a frame receives an extra ``reorder_delay`` on top of
        its normal delay, pushing it behind later frames.
    delay:
        Fixed one-way latency in virtual seconds.
    jitter:
        Uniform extra delay in ``[0, jitter]``.
    reorder_delay:
        The extra delay applied to deliberately reordered frames.
    """

    loss_rate: float = 0.0
    corruption_rate: float = 0.0
    duplication_rate: float = 0.0
    reorder_rate: float = 0.0
    delay: float = 0.05
    jitter: float = 0.0
    reorder_delay: float = 0.1

    def __post_init__(self) -> None:
        for name in ("loss_rate", "corruption_rate", "duplication_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.delay < 0 or self.jitter < 0 or self.reorder_delay < 0:
            raise ValueError("delays must be non-negative")


@dataclass
class ChannelStats:
    """Counters describing what a channel did to its traffic."""

    sent: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    delivered: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0


class Channel:
    """A unidirectional lossy channel.

    Parameters
    ----------
    sim:
        The event simulator driving delivery.
    config:
        Fault/delay model.
    rng:
        Seeded RNG; supply one per channel for reproducibility.
    deliver:
        Callback receiving each delivered frame (possibly corrupted).
        May be set later via :meth:`connect`.
    obs:
        An :class:`~repro.obs.Instrumentation` context; defaults to the
        simulator's.  When enabled, every fate a frame can meet (sent,
        dropped, corrupted, duplicated, reordered, delivered) increments a
        ``channel.frames`` counter labeled by channel name, alongside the
        local :class:`ChannelStats`.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ChannelConfig,
        rng: random.Random,
        deliver: Optional[Callable[[bytes], None]] = None,
        name: str = "channel",
        obs: Optional["Instrumentation"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rng = rng
        self.name = name
        self._deliver = deliver
        self.stats = ChannelStats()
        self.obs = obs if obs is not None else sim.obs

    def _count(self, fate: str, nbytes: Optional[int] = None) -> None:
        """One frame met ``fate``; mirror it into the metrics registry."""
        self.obs.registry.counter("channel.frames", channel=self.name, fate=fate).inc()
        if nbytes is not None:
            self.obs.registry.counter(
                "channel.bytes", channel=self.name, fate=fate
            ).inc(nbytes)

    def connect(self, deliver: Callable[[bytes], None]) -> None:
        """Attach (or replace) the receive callback."""
        self._deliver = deliver

    def send(self, frame: bytes) -> None:
        """Submit a frame; the fault model decides its fate."""
        if self._deliver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver connected")
        if not isinstance(frame, (bytes, bytearray)):
            raise TypeError(f"frames must be bytes, got {type(frame).__name__}")
        frame = bytes(frame)
        observing = self.obs.enabled
        self.stats.sent += 1
        self.stats.bytes_sent += len(frame)
        if observing:
            self._count("sent", len(frame))
        if self.rng.random() < self.config.loss_rate:
            self.stats.dropped += 1
            if observing:
                self._count("dropped", len(frame))
            return
        copies = 1
        if self.rng.random() < self.config.duplication_rate:
            copies = 2
            self.stats.duplicated += 1
            if observing:
                self._count("duplicated")
        for _ in range(copies):
            self._schedule_delivery(frame)

    def _schedule_delivery(self, frame: bytes) -> None:
        payload = frame
        observing = self.obs.enabled
        if self.rng.random() < self.config.corruption_rate and frame:
            payload = self._flip_random_bit(frame)
            self.stats.corrupted += 1
            if observing:
                self._count("corrupted")
        delay = self.config.delay + self.rng.uniform(0.0, self.config.jitter)
        if self.rng.random() < self.config.reorder_rate:
            delay += self.config.reorder_delay
            self.stats.reordered += 1
            if observing:
                self._count("reordered")
        self.sim.schedule(delay, lambda: self._deliver_now(payload))

    def _flip_random_bit(self, frame: bytes) -> bytes:
        bit_index = self.rng.randrange(len(frame) * 8)
        corrupted = bytearray(frame)
        corrupted[bit_index // 8] ^= 1 << (7 - bit_index % 8)
        return bytes(corrupted)

    def _deliver_now(self, frame: bytes) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(frame)
        if self.obs.enabled:
            self._count("delivered", len(frame))
        self._deliver(frame)

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, loss={self.config.loss_rate})"
