"""Traffic capture and spec-driven pretty-printing (a tiny tcpdump).

Attach a :class:`Capture` to any :class:`~repro.netsim.channel.Channel`
and every frame that *enters* the channel is recorded with its virtual
timestamp and direction.  Because packet formats are first-class specs,
the capture can then decode and render its own transcript — the
observability story that falls out of defining protocols in the DSL
rather than in code.

Frames that fail to parse under every registered spec are shown as hex
with the reason — corrupted frames therefore stand out in transcripts
exactly as they do to the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.netsim.channel import Channel


@dataclass(frozen=True)
class CapturedFrame:
    """One frame as submitted to a channel."""

    time: float
    channel_name: str
    data: bytes
    index: int


class Capture:
    """Records frames entering one or more channels.

    Parameters
    ----------
    specs:
        Packet specs used (in order) to decode frames for rendering;
        the first spec that parses *and verifies* a frame names it.
    """

    def __init__(self, specs: Sequence[Any] = ()) -> None:
        self.specs = list(specs)
        self.frames: List[CapturedFrame] = []
        self._taps: List[Tuple[Channel, Any]] = []

    def tap(self, channel: Channel) -> None:
        """Start capturing frames submitted to ``channel``.

        The tap wraps ``channel.send`` — losses/corruption applied *by*
        the channel happen after the tap, so the capture shows what the
        sender transmitted (like a tap at the sender's NIC).
        """
        original_send = channel.send

        def tapped(frame: bytes) -> None:
            self.frames.append(
                CapturedFrame(
                    time=channel.sim.now,
                    channel_name=channel.name,
                    data=bytes(frame),
                    index=len(self.frames),
                )
            )
            original_send(frame)

        channel.send = tapped
        self._taps.append((channel, original_send))

    def untap_all(self) -> None:
        """Restore every tapped channel's original send."""
        for channel, original_send in self._taps:
            channel.send = original_send
        self._taps.clear()

    def decode(self, frame: CapturedFrame) -> Tuple[Optional[Any], str]:
        """Try each spec; returns (verified-or-None, description)."""
        for spec in self.specs:
            verified = spec.try_parse(frame.data)
            if verified is not None:
                packet = verified.value
                fields = ", ".join(
                    f"{name}={packet[name]!r}"
                    for name in spec.field_names
                    if not isinstance(packet[name], (bytes, bytearray))
                    or len(packet[name]) <= 8
                )
                return verified, f"{spec.name} {{{fields}}}"
        return None, f"UNPARSEABLE {len(frame.data)}B: {frame.data.hex()}"

    def transcript(self) -> str:
        """Render the whole capture, one line per frame."""
        lines = []
        for frame in self.frames:
            _, description = self.decode(frame)
            lines.append(
                f"{frame.time:10.4f}  {frame.channel_name:<22} {description}"
            )
        return "\n".join(lines)

    def parsed_frames(self) -> List[Tuple[CapturedFrame, Any]]:
        """Frames that parse under some spec, with their verified packets."""
        result = []
        for frame in self.frames:
            verified, _ = self.decode(frame)
            if verified is not None:
                result.append((frame, verified))
        return result

    def sequence_chart(self, width: int = 30) -> str:
        """Render the capture as a text message-sequence chart.

        Channel names of the form ``a->b`` place ``a`` on the left and
        ``b`` on the right; frames travelling each way become arrows.
        Undecodable frames are marked ``?`` (on a lossy link these are
        the corrupted transmissions).
        """
        parties: List[str] = []
        for frame in self.frames:
            if "->" in frame.channel_name:
                source, _, target = frame.channel_name.partition("->")
                for name in (source, target):
                    if name not in parties:
                        parties.append(name)
        if len(parties) < 2:
            return self.transcript()
        left, right = parties[0], parties[1]
        header = f"{left:<12}{'':{width}}{right}"
        lines = [header]
        for frame in self.frames:
            source, _, _ = frame.channel_name.partition("->")
            verified, description = self.decode(frame)
            label = description if verified is not None else "?corrupt/garbage"
            if len(label) > width - 4:
                label = label[: width - 5] + "…"
            if source == left:
                arrow = f"{label:-<{width - 1}}>"
            else:
                arrow = f"<{label:-<{width - 1}}"
            lines.append(f"{frame.time:9.3f}  |{arrow}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.frames)
