"""Traffic capture and spec-driven pretty-printing (a tiny tcpdump).

Attach a :class:`Capture` to any :class:`~repro.netsim.channel.Channel`
and every frame that *enters* the channel is recorded with its virtual
timestamp and direction.  Because packet formats are first-class specs,
the capture can then decode and render its own transcript — the
observability story that falls out of defining protocols in the DSL
rather than in code.

Frames that fail to parse under every registered spec are shown as hex
with the reason — corrupted frames therefore stand out in transcripts
exactly as they do to the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.netsim.channel import Channel
from repro.obs.live import flightrec
from repro.obs.trace import SpanRecord, Tracer, frame_digest


def describe_frame(data: bytes, specs: Sequence[Any]) -> Tuple[Optional[Any], str]:
    """Decode one wire frame against a spec list; ``(verified, text)``.

    The first spec that parses *and verifies* the frame names it; frames
    no spec accepts render as hex.  This is the rendering the capture
    transcript uses, factored out so other planes (the real-socket
    recorder in ``repro.serve``) describe frames identically.
    """
    for spec in specs:
        verified = spec.try_parse(data)
        if verified is not None:
            packet = verified.value
            fields = ", ".join(
                f"{name}={packet[name]!r}"
                for name in spec.field_names
                if not isinstance(packet[name], (bytes, bytearray))
                or len(packet[name]) <= 8
            )
            return verified, f"{spec.name} {{{fields}}}"
    return None, f"UNPARSEABLE {len(data)}B: {data.hex()}"


@dataclass(frozen=True)
class CapturedFrame:
    """One frame as submitted to a channel."""

    time: float
    channel_name: str
    data: bytes
    index: int

    @property
    def digest(self) -> str:
        """Stable short digest; joins this frame to machine trace spans."""
        return frame_digest(self.data)


class Capture:
    """Records frames entering one or more channels.

    Parameters
    ----------
    specs:
        Packet specs used (in order) to decode frames for rendering;
        the first spec that parses *and verifies* a frame names it.
    tracer:
        An optional :class:`~repro.obs.Tracer`.  When given, every
        captured frame also lands on the shared trace timeline as a
        ``capture.frame`` event (virtual-time stamped, digest attached),
        so channel captures and machine ``exec_trans`` spans can be
        correlated — see :meth:`correlate`.
    """

    def __init__(
        self, specs: Sequence[Any] = (), tracer: Optional[Tracer] = None
    ) -> None:
        self.specs = list(specs)
        self.tracer = tracer
        self.frames: List[CapturedFrame] = []
        self._taps: List[Tuple[Channel, Any]] = []

    def tap(self, channel: Channel) -> None:
        """Start capturing frames submitted to ``channel``.

        The tap wraps ``channel.send`` — losses/corruption applied *by*
        the channel happen after the tap, so the capture shows what the
        sender transmitted (like a tap at the sender's NIC).
        """
        original_send = channel.send

        def tapped(frame: bytes) -> None:
            captured = CapturedFrame(
                time=channel.sim.now,
                channel_name=channel.name,
                data=bytes(frame),
                index=len(self.frames),
            )
            self.frames.append(captured)
            if self.tracer is not None:
                self.tracer.event(
                    "capture.frame",
                    virt=captured.time,
                    channel=captured.channel_name,
                    index=captured.index,
                    size=len(captured.data),
                    digest=captured.digest,
                )
            # Feed the flight recorder's last-N-frames ring (no-op
            # unless REPRO_OBS_FLIGHTREC armed it), so a crash bundle
            # carries the wire traffic that led up to the failure.
            flightrec.record_frame(captured.data, context=captured.channel_name)
            original_send(frame)

        channel.send = tapped
        self._taps.append((channel, original_send))

    def correlate(
        self, tracer: Optional[Tracer] = None
    ) -> List[Tuple[CapturedFrame, SpanRecord]]:
        """Join captured frames to the ``exec_trans`` spans that consumed them.

        A sender's frame crosses the wire, parses into a ``Verified``
        packet, and feeds a machine transition; this method reconstructs
        that link.  Machine spans carry a ``payload_digest`` for both
        raw-byte payloads (e.g. the ARQ sender's SEND) and verified
        packets (e.g. RECV — encoding is verbatim, so the receiver's
        packet re-encodes to exactly the sender's frame).  A frame matches
        the first such span with the same digest that did not start
        before the frame entered the channel (in virtual time).

        Returns ``(frame, span)`` pairs in frame order; frames that were
        lost or corrupted in flight match nothing.
        """
        tracer = tracer if tracer is not None else self.tracer
        if tracer is None:
            raise ValueError("correlate() needs a tracer (none was attached)")
        spans_by_digest: Dict[str, List[SpanRecord]] = {}
        for record in tracer.records():
            if record.name != "exec_trans" or "error" in record.attrs:
                continue
            digest = record.attrs.get("payload_digest")
            if digest is not None:
                spans_by_digest.setdefault(digest, []).append(record)
        pairs: List[Tuple[CapturedFrame, SpanRecord]] = []
        for frame in self.frames:
            for span in spans_by_digest.get(frame.digest, ()):
                starts = span.virt_start
                if starts is None or starts >= frame.time:
                    pairs.append((frame, span))
                    break
        return pairs

    def untap_all(self) -> None:
        """Restore every tapped channel's original send."""
        for channel, original_send in self._taps:
            channel.send = original_send
        self._taps.clear()

    def decode(self, frame: CapturedFrame) -> Tuple[Optional[Any], str]:
        """Try each spec; returns (verified-or-None, description)."""
        return describe_frame(frame.data, self.specs)

    def transcript(self) -> str:
        """Render the whole capture, one line per frame."""
        lines = []
        for frame in self.frames:
            _, description = self.decode(frame)
            lines.append(
                f"{frame.time:10.4f}  {frame.channel_name:<22} {description}"
            )
        return "\n".join(lines)

    def parsed_frames(self) -> List[Tuple[CapturedFrame, Any]]:
        """Frames that parse under some spec, with their verified packets."""
        result = []
        for frame in self.frames:
            verified, _ = self.decode(frame)
            if verified is not None:
                result.append((frame, verified))
        return result

    def sequence_chart(self, width: int = 30) -> str:
        """Render the capture as a text message-sequence chart.

        Channel names of the form ``a->b`` place ``a`` on the left and
        ``b`` on the right; frames travelling each way become arrows.
        Undecodable frames are marked ``?`` (on a lossy link these are
        the corrupted transmissions).
        """
        parties: List[str] = []
        for frame in self.frames:
            if "->" in frame.channel_name:
                source, _, target = frame.channel_name.partition("->")
                for name in (source, target):
                    if name not in parties:
                        parties.append(name)
        if len(parties) < 2:
            return self.transcript()
        left, right = parties[0], parties[1]
        header = f"{left:<12}{'':{width}}{right}"
        lines = [header]
        for frame in self.frames:
            source, _, _ = frame.channel_name.partition("->")
            verified, description = self.decode(frame)
            label = description if verified is not None else "?corrupt/garbage"
            if len(label) > width - 4:
                label = label[: width - 5] + "…"
            if source == left:
                arrow = f"{label:-<{width - 1}}>"
            else:
                arrow = f"<{label:-<{width - 1}}"
            lines.append(f"{frame.time:9.3f}  |{arrow}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.frames)
