"""Restartable timers on top of the event simulator.

Protocol machines (ARQ retransmission, keepalives, adaptive HELLO
intervals) need timers that can be started, stopped and restarted without
leaking stale callbacks; :class:`Timer` wraps event cancellation so a
restart atomically invalidates the previous expiry.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.simulator import Event, Simulator


class Timer:
    """A one-shot, restartable timer.

    The callback fires once per start unless the timer is stopped or
    restarted first.  ``duration`` may be changed between starts (adaptive
    retransmission timeouts do exactly that).
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        callback: Callable[[], None],
        name: str = "timer",
    ) -> None:
        if duration <= 0:
            raise ValueError(f"timer duration must be positive, got {duration}")
        self.sim = sim
        self.duration = duration
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self.expirations = 0
        self.starts = 0
        self.cancels = 0
        self.obs = sim.obs

    @property
    def running(self) -> bool:
        """True while an expiry is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def remaining(self) -> float:
        """Virtual seconds until expiry (0 when not running)."""
        if not self.running:
            return 0.0
        return max(0.0, self._event.time - self.sim.now)

    def start(self, duration: Optional[float] = None) -> None:
        """(Re)start the timer; an already-pending expiry is cancelled."""
        if duration is not None:
            if duration <= 0:
                raise ValueError(f"timer duration must be positive, got {duration}")
            self.duration = duration
        self.stop()
        self.starts += 1
        if self.obs.enabled:
            self.obs.registry.counter("timer.started", timer=self.name).inc()
        self._event = self.sim.schedule(self.duration, self._fire)

    def stop(self) -> None:
        """Cancel a pending expiry; no-op when idle."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            self.cancels += 1
            if self.obs.enabled:
                self.obs.registry.counter("timer.cancelled", timer=self.name).inc()

    def _fire(self) -> None:
        self._event = None
        self.expirations += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("timer.fired", timer=self.name).inc()
            obs.tracer.event("timer.fire", timer=self.name)
        self.callback()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"Timer({self.name!r}, {self.duration}s, {state})"
