"""A deterministic discrete-event network simulator.

The paper's protocols are meant to run over real, adverse networks —
wireless and mobile environments with loss, corruption and reordering
(§1.1, §2.2).  This package is the IO substrate substituted for real
sockets: a virtual clock, timers, and point-to-point channels with
configurable fault models.  Everything is driven by a seeded RNG, so each
experiment is exactly reproducible.
"""

from repro.netsim.simulator import BudgetExhausted, Event, Simulator
from repro.netsim.timers import Timer
from repro.netsim.channel import Channel, ChannelConfig, ChannelStats
from repro.netsim.node import DuplexLink, Node
from repro.netsim.capture import Capture, CapturedFrame, describe_frame
from repro.netsim.replay import ScriptedHost, replay_frames

__all__ = [
    "BudgetExhausted",
    "Simulator",
    "Event",
    "Timer",
    "Channel",
    "ChannelConfig",
    "ChannelStats",
    "Node",
    "DuplexLink",
    "Capture",
    "CapturedFrame",
    "describe_frame",
    "ScriptedHost",
    "replay_frames",
]
