"""The discrete-event simulation core: a virtual clock and an event heap.

Deterministic by construction: events at equal times fire in scheduling
order (a monotonically increasing tie-breaker), and all randomness in the
wider simulator flows from explicitly seeded ``random.Random`` instances —
never the global RNG.

Cancelled events stay in the heap, inert, until their position surfaces —
cancellation is O(1) and the heap never needs re-sifting.  The simulator
accounts for them precisely: a skipped tombstone is never counted as a
processed event, never consumes a ``max_events`` budget slot, and
:attr:`Simulator.events_pending` (live events only) stays O(1) to read.

When built with an enabled :class:`~repro.obs.Instrumentation`, the
simulator counts events scheduled/fired/cancelled/skipped, keeps an
``sim.events_pending`` gauge, and attaches its virtual clock to the
tracer so every trace record carries simulated time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs.instrument import Instrumentation, get_default


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    _sim: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap, inert).

        Cancelling an event that already fired, or twice, is a no-op — the
        owning simulator's live-event accounting stays exact either way.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    obs:
        An :class:`~repro.obs.Instrumentation` context; defaults to the
        process-wide one.  Channels and timers built on this simulator
        report into the same context.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self._heap: List[Event] = []
        self._now = 0.0
        self._sequence = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self.obs = obs if obs is not None else get_default()
        if self.obs.enabled:
            # Latest simulator wins the tracer's virtual clock: trace
            # records are stamped with this sim's time from here on.
            self.obs.tracer.virtual_clock = lambda: self._now

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (cancelled events never count)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still in the heap (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_pending(self) -> int:
        """Events scheduled and still due to fire (cancelled ones excluded)."""
        return len(self._heap) - self._cancelled_pending

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        event = Event(time, self._sequence, callback, _sim=self)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.events_scheduled").inc()
            obs.registry.gauge("sim.events_pending").set(self.events_pending)
        return event

    def _on_cancel(self) -> None:
        """Bookkeeping hook invoked by :meth:`Event.cancel`."""
        self._cancelled_pending += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.events_cancelled").inc()
            obs.registry.gauge("sim.events_pending").set(self.events_pending)

    def _pop_skipping_cancelled(self) -> Optional[Event]:
        """Pop the next live event, discarding cancelled tombstones.

        Skipped tombstones are not processed events: they advance neither
        the clock nor :attr:`events_processed`, and callers must not let
        them consume execution budgets.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                obs = self.obs
                if obs.enabled:
                    obs.registry.counter("sim.events_skipped").inc()
                continue
            return event
        return None

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        event = self._pop_skipping_cancelled()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.fired = True
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.events_fired").inc()
            obs.registry.gauge("sim.events_pending").set(self.events_pending)
        event.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled later stay
        queued and the clock advances to ``until`` exactly.  ``max_events``
        bounds *executed* events for safety against runaway protocols (the
        bug-seeded baselines in the correctness experiments rely on this);
        cancelled events skipped along the way do not consume the budget.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            upcoming = self._heap[0]
            if upcoming.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_pending -= 1
                if self.obs.enabled:
                    self.obs.registry.counter("sim.events_skipped").inc()
                continue
            if until is not None and upcoming.time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], max_events: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true; returns whether it became true."""
        if predicate():
            return True
        executed = 0
        while executed < max_events and self.step():
            executed += 1
            if predicate():
                return True
        return predicate()
