"""The discrete-event simulation core: a virtual clock and an event heap.

Deterministic by construction: events at equal times fire in scheduling
order (a monotonically increasing tie-breaker), and all randomness in the
wider simulator flows from explicitly seeded ``random.Random`` instances —
never the global RNG.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap, inert)."""
        self.cancelled = True


class Simulator:
    """A single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now = 0.0
        self._sequence = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        event = Event(time, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled later stay
        queued and the clock advances to ``until`` exactly.  ``max_events``
        bounds execution for safety against runaway protocols (the
        bug-seeded baselines in the correctness experiments rely on this).
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            upcoming = self._heap[0]
            if upcoming.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and upcoming.time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, predicate: Callable[[], bool], max_events: int = 1_000_000) -> bool:
        """Run until ``predicate()`` is true; returns whether it became true."""
        if predicate():
            return True
        executed = 0
        while executed < max_events and self.step():
            executed += 1
            if predicate():
                return True
        return predicate()
