"""The discrete-event simulation core: a virtual clock over a slab event store.

Deterministic by construction: events at equal times fire in scheduling
order (a monotonically increasing tie-breaker), and all randomness in the
wider simulator flows from explicitly seeded ``random.Random`` instances —
never the global RNG.

Storage is a **slab**, not a heap of event objects: the priority queue
holds plain ``(time, seq, slot)`` tuples (compared in C), and everything
else about an event — its callback, its flags, the handle returned to the
caller — lives in parallel arrays indexed by ``slot``.  Slots are recycled
through a free list the moment an event leaves the queue, so a population
of machines scheduling and cancelling millions of timers reuses a bounded
arena instead of churning the allocator with one object per event.

Cancellation stays O(1): a cancelled event becomes a tombstone that is
discarded when its position surfaces.  Tombstones can no longer pile up,
though — whenever cancelled entries outnumber live ones the queue is
**compacted** (tombstones filtered out, remainder re-heapified), which is
amortized O(1) per cancellation and keeps the queue within 2x of the live
event count under retransmission-style schedule/cancel churn.  The
accounting stays exact throughout: a skipped or compacted tombstone is
never counted as a processed event, never consumes a ``max_events``
budget slot, and :attr:`Simulator.events_pending` (live events only)
stays O(1) to read.

When built with an enabled :class:`~repro.obs.Instrumentation`, the
simulator counts events scheduled/fired/cancelled/skipped/compacted,
keeps an ``sim.events_pending`` gauge, and attaches its virtual clock to
the tracer so every trace record carries simulated time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.instrument import Instrumentation, get_default

#: Flag bits in the slab's per-event flag word.
_CANCELLED = 1
_FIRED = 2


class BudgetExhausted(RuntimeError):
    """:meth:`Simulator.run_until` spent its event budget inconclusively.

    Raised when the budget runs out while live events remain and the
    predicate still does not hold — the one outcome that is neither
    "became true" nor "ran out of events", which silently returning
    ``False`` used to conflate.  Carries enough context to size the next
    attempt.
    """

    def __init__(self, max_events: int, now: float, events_pending: int) -> None:
        self.max_events = max_events
        self.now = now
        self.events_pending = events_pending
        super().__init__(
            f"predicate not satisfied after {max_events} executed events "
            f"(virtual time {now}, {events_pending} still pending); pass a "
            "larger max_events or treat the scenario as divergent"
        )


class Event:
    """A handle to one scheduled callback.

    While the event is queued the handle is a *view* over the owning
    simulator's slab (slot indices stay private); once the event fires,
    is skipped, or is compacted away, the terminal state is copied into
    the handle and the slab slot is recycled.  Either way ``time``,
    ``sequence``, ``cancelled`` and ``fired`` keep answering correctly
    for as long as the caller holds the handle.
    """

    __slots__ = ("_sim", "_slot", "_time", "_sequence", "_flags")

    def __init__(self, sim: "Simulator", slot: int) -> None:
        self._sim: Optional["Simulator"] = sim
        self._slot = slot
        self._time = 0.0
        self._sequence = 0
        self._flags = 0

    @property
    def time(self) -> float:
        """Absolute virtual time this event fires (or fired) at."""
        sim = self._sim
        if sim is not None:
            return sim._ev_time[self._slot]
        return self._time

    @property
    def sequence(self) -> int:
        """The scheduling-order tie-breaker."""
        sim = self._sim
        if sim is not None:
            return sim._ev_seq[self._slot]
        return self._sequence

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called before firing."""
        sim = self._sim
        if sim is not None:
            return bool(sim._ev_flags[self._slot] & _CANCELLED)
        return bool(self._flags & _CANCELLED)

    @property
    def fired(self) -> bool:
        """True once the callback has executed."""
        sim = self._sim
        if sim is not None:
            return bool(sim._ev_flags[self._slot] & _FIRED)
        return bool(self._flags & _FIRED)

    def cancel(self) -> None:
        """Prevent the event from firing (it tombstones in place).

        Cancelling an event that already fired, or twice, is a no-op — the
        owning simulator's live-event accounting stays exact either way.
        """
        sim = self._sim
        if sim is None:
            return
        flags = sim._ev_flags[self._slot]
        if flags & (_CANCELLED | _FIRED):
            return
        sim._ev_flags[self._slot] = flags | _CANCELLED
        sim._on_cancel()

    def __repr__(self) -> str:
        state = (
            "cancelled" if self.cancelled else "fired" if self.fired else "pending"
        )
        return f"Event(t={self.time}, seq={self.sequence}, {state})"


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    obs:
        An :class:`~repro.obs.Instrumentation` context; defaults to the
        process-wide one.  Channels and timers built on this simulator
        report into the same context.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        # The slab: parallel arrays indexed by slot, recycled via _free.
        self._ev_time: List[float] = []
        self._ev_seq: List[int] = []
        self._ev_flags: List[int] = []
        self._ev_callback: List[Optional[Callable[[], None]]] = []
        self._ev_handle: List[Optional[Event]] = []
        self._free: List[int] = []
        self._now = 0.0
        self._sequence = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self.obs = obs if obs is not None else get_default()
        if self.obs.enabled:
            # Latest simulator wins the tracer's virtual clock: trace
            # records are stamped with this sim's time from here on.
            self.obs.tracer.virtual_clock = lambda: self._now

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (cancelled events never count)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_pending(self) -> int:
        """Events scheduled and still due to fire (cancelled ones excluded)."""
        return len(self._heap) - self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Times the queue has been compacted to shed tombstones."""
        return self._compactions

    @property
    def slab_capacity(self) -> int:
        """Slots the slab has ever grown to (recycled, never shrunk)."""
        return len(self._ev_time)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback)

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        seq = self._sequence
        self._sequence = seq + 1
        if self._free:
            slot = self._free.pop()
            self._ev_time[slot] = time
            self._ev_seq[slot] = seq
            self._ev_flags[slot] = 0
            self._ev_callback[slot] = callback
        else:
            slot = len(self._ev_time)
            self._ev_time.append(time)
            self._ev_seq.append(seq)
            self._ev_flags.append(0)
            self._ev_callback.append(callback)
            self._ev_handle.append(None)
        event = Event(self, slot)
        self._ev_handle[slot] = event
        heapq.heappush(self._heap, (time, seq, slot))
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.events_scheduled").inc()
            obs.registry.gauge("sim.events_pending").set(self.events_pending)
        return event

    def _retire(self, slot: int, flags: int) -> None:
        """Copy terminal state into the handle and recycle the slot."""
        handle = self._ev_handle[slot]
        if handle is not None:
            handle._time = self._ev_time[slot]
            handle._sequence = self._ev_seq[slot]
            handle._flags = flags
            handle._sim = None
        self._ev_callback[slot] = None
        self._ev_handle[slot] = None
        self._free.append(slot)

    def _on_cancel(self) -> None:
        """Bookkeeping hook invoked by :meth:`Event.cancel`."""
        self._cancelled_pending += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.events_cancelled").inc()
            obs.registry.gauge("sim.events_pending").set(self.events_pending)
        # Compact when tombstones outnumber live events: each compaction
        # is O(queue) and removes more than half of it, so the cost is
        # amortized O(1) per cancellation and the queue stays within 2x
        # of the live count no matter how hot the schedule/cancel churn.
        if self._cancelled_pending > len(self._heap) - self._cancelled_pending:
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone from the queue and re-heapify the rest."""
        flags = self._ev_flags
        live: List[Tuple[float, int, int]] = []
        for entry in self._heap:
            slot = entry[2]
            f = flags[slot]
            if f & _CANCELLED:
                self._retire(slot, f)
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_pending = 0
        self._compactions += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter("sim.compactions").inc()

    def step(self) -> bool:
        """Run the next live event; returns False when none remain.

        Tombstones surfacing on the way are discarded without advancing
        the clock, :attr:`events_processed`, or any caller's budget.
        """
        heap = self._heap
        ev_flags = self._ev_flags
        obs = self.obs
        while heap:
            time, _seq, slot = heapq.heappop(heap)
            flags = ev_flags[slot]
            if flags & _CANCELLED:
                self._cancelled_pending -= 1
                self._retire(slot, flags)
                if obs.enabled:
                    obs.registry.counter("sim.events_skipped").inc()
                continue
            callback = self._ev_callback[slot]
            self._now = time
            self._events_processed += 1
            self._retire(slot, flags | _FIRED)
            if obs.enabled:
                obs.registry.counter("sim.events_fired").inc()
                obs.registry.gauge("sim.events_pending").set(self.events_pending)
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time; events scheduled later stay
        queued and the clock advances to ``until`` exactly.  ``max_events``
        bounds *executed* events for safety against runaway protocols (the
        bug-seeded baselines in the correctness experiments rely on this);
        cancelled events skipped along the way do not consume the budget.
        """
        heap = self._heap
        ev_flags = self._ev_flags
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                return
            top_time, _seq, slot = heap[0]
            if ev_flags[slot] & _CANCELLED:
                heapq.heappop(heap)
                self._cancelled_pending -= 1
                self._retire(slot, ev_flags[slot])
                if self.obs.enabled:
                    self.obs.registry.counter("sim.events_skipped").inc()
                continue
            if until is not None and top_time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Run until ``predicate()`` is true; returns whether it became true.

        Returns ``False`` only when the event queue drained without the
        predicate holding.  Exhausting ``max_events`` while live events
        remain raises :class:`BudgetExhausted` instead of returning an
        ambiguous ``False`` — a megascale scenario that silently stops a
        million events in is indistinguishable from a protocol failure
        otherwise.  Callers with open-ended workloads should size the
        budget explicitly.
        """
        if predicate():
            return True
        executed = 0
        while executed < max_events and self.step():
            executed += 1
            if predicate():
                return True
        if predicate():
            return True
        if self.events_pending > 0:
            raise BudgetExhausted(max_events, self._now, self.events_pending)
        return False
