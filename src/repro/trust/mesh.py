"""A synthetic relay mesh with compromised nodes (experiment E8).

The topology is a layered mesh: the source reaches the destination through
``hops`` layers of ``width`` relays each; a candidate path picks one relay
per layer, so there are ``width ** hops`` paths.  A configurable fraction
of relays is *compromised*: each drops (or corrupts, which the receiving
end detects and treats as loss) traversing messages with high probability,
while honest relays forward reliably apart from a small baseline loss.

Strategies compared per round:

* ``random`` — pick a uniformly random path every round (no learning);
* ``fixed``  — pick one random path at the start and stay on it;
* ``trust``  — :class:`~repro.trust.learning.TrustManager` epsilon-greedy
  selection with success/failure feedback.

The headline curve (delivery ratio vs compromised fraction) is the shape
reference [12] reports: learned trust holds delivery high until the
honest-path space itself vanishes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.trust.learning import TrustManager


@dataclass
class MeshReport:
    """Outcome of one mesh experiment."""

    strategy: str
    rounds: int
    delivered: int
    compromised_fraction: float
    delivery_history: List[bool] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered rounds over total rounds."""
        if self.rounds == 0:
            return 0.0
        return self.delivered / self.rounds

    def late_delivery_ratio(self, tail_fraction: float = 0.5) -> float:
        """Delivery ratio over the trailing part of the run (post-learning)."""
        if not self.delivery_history:
            return 0.0
        start = int(len(self.delivery_history) * (1 - tail_fraction))
        tail = self.delivery_history[start:]
        return sum(tail) / len(tail) if tail else 0.0


class RelayMesh:
    """The layered relay topology with seeded fault assignment."""

    def __init__(
        self,
        width: int = 4,
        hops: int = 2,
        compromised_fraction: float = 0.25,
        compromised_drop_rate: float = 0.9,
        baseline_loss: float = 0.02,
        seed: int = 0,
    ) -> None:
        if width < 1 or hops < 1:
            raise ValueError("mesh needs at least one relay per layer and one hop")
        if not 0.0 <= compromised_fraction <= 1.0:
            raise ValueError("compromised_fraction must be a probability")
        self.width = width
        self.hops = hops
        self.compromised_fraction = compromised_fraction
        self.compromised_drop_rate = compromised_drop_rate
        self.baseline_loss = baseline_loss
        self.rng = random.Random(seed)
        self.relays: List[str] = [
            f"relay-{layer}-{index}"
            for layer in range(hops)
            for index in range(width)
        ]
        target = round(len(self.relays) * compromised_fraction)
        shuffled = list(self.relays)
        self.rng.shuffle(shuffled)
        self.compromised = frozenset(shuffled[:target])

    def layer(self, index: int) -> List[str]:
        """Relay names in one layer."""
        return [f"relay-{index}-{i}" for i in range(self.width)]

    def all_paths(self) -> List[Tuple[str, ...]]:
        """Every one-relay-per-layer path, in deterministic order."""
        return [
            tuple(choice)
            for choice in itertools.product(
                *(self.layer(i) for i in range(self.hops))
            )
        ]

    def honest_paths_exist(self) -> bool:
        """True when at least one fully honest path exists."""
        return any(
            all(node not in self.compromised for node in path)
            for path in self.all_paths()
        )

    def attempt(self, path: Sequence[str]) -> bool:
        """Send one message along ``path``; True if it arrives intact."""
        for node in path:
            if node in self.compromised:
                if self.rng.random() < self.compromised_drop_rate:
                    return False
            if self.rng.random() < self.baseline_loss:
                return False
        return True


def run_mesh_experiment(
    strategy: str,
    rounds: int = 400,
    width: int = 4,
    hops: int = 2,
    compromised_fraction: float = 0.25,
    compromised_drop_rate: float = 0.9,
    baseline_loss: float = 0.02,
    epsilon: float = 0.1,
    seed: int = 0,
) -> MeshReport:
    """Run one strategy over a freshly seeded mesh."""
    if strategy not in ("random", "fixed", "trust"):
        raise ValueError(f"unknown strategy {strategy!r}")
    mesh = RelayMesh(
        width=width,
        hops=hops,
        compromised_fraction=compromised_fraction,
        compromised_drop_rate=compromised_drop_rate,
        baseline_loss=baseline_loss,
        seed=seed,
    )
    paths = mesh.all_paths()
    strategy_rng = random.Random(seed + 1)
    manager = TrustManager(epsilon=epsilon, rng=strategy_rng)
    fixed_path = strategy_rng.choice(paths)
    delivered = 0
    history: List[bool] = []
    for _ in range(rounds):
        if strategy == "random":
            path = strategy_rng.choice(paths)
        elif strategy == "fixed":
            path = fixed_path
        else:
            path = manager.select_path(paths)
        ok = mesh.attempt(path)
        if strategy == "trust":
            if ok:
                manager.record_success(path)
            else:
                manager.record_failure(path)
        delivered += int(ok)
        history.append(ok)
    return MeshReport(
        strategy=strategy,
        rounds=rounds,
        delivered=delivered,
        compromised_fraction=compromised_fraction,
        delivery_history=history,
    )
