"""Trust-aware communication in untrusted networks (paper §1.1, ref [12]).

Rogers & Bhatti's "lightweight mechanism for dependable communication in
untrusted networks" learns which relays to trust by observing forwarding
behaviour.  This package provides that behavioural hook and a synthetic
relay mesh to exercise it (experiment E8):

* :class:`~repro.trust.learning.TrustManager` — per-node trust scores
  with Beta-style updates and epsilon-greedy exploration;
* :class:`~repro.trust.mesh.RelayMesh` — a multi-path relay topology in
  which some relays are compromised (dropping or corrupting traffic), and
  path-selection strategies are compared round by round.
"""

from repro.trust.learning import TrustManager
from repro.trust.mesh import MeshReport, RelayMesh, run_mesh_experiment

__all__ = ["TrustManager", "RelayMesh", "MeshReport", "run_mesh_experiment"]
