"""Exploratory trust learning over forwarding nodes.

Each node's trustworthiness is estimated from observed outcomes with a
Beta-posterior mean — ``(successes + 1) / (successes + failures + 2)`` —
which starts at the uninformed 0.5 and converges as evidence accumulates.
Path selection is epsilon-greedy over the product of node scores: mostly
exploit the most trusted path, but keep exploring so a compromised node
that behaved well during probing is eventually found out (the "secure,
exploratory learning of forwarding behaviour" of the paper's reference
[12]).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple


class TrustManager:
    """Tracks per-node trust and selects forwarding paths."""

    def __init__(
        self,
        epsilon: float = 0.1,
        rng: random.Random = None,
        decay: float = 1.0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be a probability, got {epsilon}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.epsilon = epsilon
        self.decay = decay
        self.rng = rng or random.Random(0)
        self._successes: Dict[str, float] = {}
        self._failures: Dict[str, float] = {}

    def trust(self, node: str) -> float:
        """Beta-posterior mean trust for a node (0.5 when unobserved)."""
        s = self._successes.get(node, 0.0)
        f = self._failures.get(node, 0.0)
        return (s + 1.0) / (s + f + 2.0)

    def path_score(self, path: Sequence[str]) -> float:
        """A path is only as trustworthy as the product of its relays."""
        score = 1.0
        for node in path:
            score *= self.trust(node)
        return score

    def select_path(self, paths: Sequence[Sequence[str]]) -> Sequence[str]:
        """Epsilon-greedy selection among candidate paths."""
        if not paths:
            raise ValueError("no candidate paths to select from")
        if self.rng.random() < self.epsilon:
            return self.rng.choice(list(paths))
        return max(paths, key=self.path_score)

    def record_success(self, path: Sequence[str]) -> None:
        """Delivery succeeded: every relay on the path gains credit."""
        for node in path:
            self._apply_decay(node)
            self._successes[node] = self._successes.get(node, 0.0) + 1.0

    def record_failure(self, path: Sequence[str]) -> None:
        """Delivery failed: every relay is suspect (the source cannot
        localize the fault, exactly the setting of reference [12])."""
        for node in path:
            self._apply_decay(node)
            self._failures[node] = self._failures.get(node, 0.0) + 1.0

    def _apply_decay(self, node: str) -> None:
        if self.decay < 1.0:
            self._successes[node] = self._successes.get(node, 0.0) * self.decay
            self._failures[node] = self._failures.get(node, 0.0) * self.decay

    def ranking(self) -> List[Tuple[str, float]]:
        """Nodes sorted most-trusted first (observed nodes only)."""
        nodes = set(self._successes) | set(self._failures)
        return sorted(
            ((node, self.trust(node)) for node in nodes),
            key=lambda pair: (-pair[1], pair[0]),
        )
