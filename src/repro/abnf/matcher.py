"""Matching byte strings against ABNF grammars.

A backtracking matcher over the :mod:`repro.abnf.grammar` AST.  Matching
is defined on *bytes* (ABNF terminals are byte values); convenience
entry points accept ``str`` and encode as ASCII.

The matcher enumerates candidate end positions lazily (generators), so
alternation and repetition backtrack correctly without
materializing the whole search space.  A recursion-depth guard turns
left-recursive grammars into a clear error instead of a stack overflow.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.abnf.grammar import (
    Alternation,
    CharLiteral,
    Concatenation,
    Element,
    Grammar,
    NumRange,
    NumSet,
    ProseVal,
    Repetition,
    RuleRef,
)


class AbnfMatchError(ValueError):
    """Raised for unmatchable constructs (prose values, unknown rules)."""


class Matcher:
    """Matches data against rules of one grammar.

    Example
    -------
    >>> from repro.abnf import parse_grammar
    >>> g = parse_grammar('greeting = "hi" 1*DIGIT')
    >>> Matcher(g).fullmatch("greeting", "hi42")
    True
    >>> Matcher(g).fullmatch("greeting", "hi")
    False
    """

    def __init__(self, grammar: Grammar, max_depth: int = 500) -> None:
        self.grammar = grammar
        self.max_depth = max_depth

    # -- public API --------------------------------------------------------

    def fullmatch(self, rule_name: str, data: Union[str, bytes]) -> bool:
        """True when the entire input matches the rule."""
        payload = self._as_bytes(data)
        target = len(payload)
        return any(
            end == target for end in self.match_ends(rule_name, payload)
        )

    def prefix_lengths(self, rule_name: str, data: Union[str, bytes]) -> list:
        """All lengths of prefixes of ``data`` the rule can match."""
        payload = self._as_bytes(data)
        return sorted(set(self.match_ends(rule_name, payload)))

    def match_ends(self, rule_name: str, data: bytes) -> Iterator[int]:
        """Yield every end offset a match starting at 0 can reach."""
        element = self.grammar.rule(rule_name)
        return self._match(element, data, 0, 0)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _as_bytes(data: Union[str, bytes]) -> bytes:
        if isinstance(data, bytes):
            return data
        return data.encode("ascii")

    def _match(
        self, element: Element, data: bytes, pos: int, depth: int
    ) -> Iterator[int]:
        if depth > self.max_depth:
            raise AbnfMatchError(
                f"recursion depth {self.max_depth} exceeded; the grammar is "
                "likely left-recursive"
            )
        if isinstance(element, RuleRef):
            try:
                body = self.grammar.rule(element.name)
            except KeyError:
                raise AbnfMatchError(
                    f"reference to undefined rule {element.name!r}"
                ) from None
            yield from self._match(body, data, pos, depth + 1)
        elif isinstance(element, CharLiteral):
            yield from self._match_literal(element, data, pos)
        elif isinstance(element, NumSet):
            end = pos + len(element.values)
            if data[pos:end] == bytes(element.values):
                yield end
        elif isinstance(element, NumRange):
            if pos < len(data) and element.low <= data[pos] <= element.high:
                yield pos + 1
        elif isinstance(element, ProseVal):
            raise AbnfMatchError(
                f"prose value <{element.text}> cannot be matched "
                "mechanically — this is what the paper means by informal "
                "specification"
            )
        elif isinstance(element, Concatenation):
            yield from self._match_sequence(element.parts, data, pos, depth)
        elif isinstance(element, Alternation):
            for choice in element.choices:
                yield from self._match(choice, data, pos, depth + 1)
        elif isinstance(element, Repetition):
            yield from self._match_repeat(element, data, pos, depth, 0)
        else:  # pragma: no cover - exhaustive over the AST
            raise AbnfMatchError(f"unknown AST node {element!r}")

    def _match_literal(
        self, element: CharLiteral, data: bytes, pos: int
    ) -> Iterator[int]:
        target = element.text.encode("ascii")
        end = pos + len(target)
        chunk = data[pos:end]
        if len(chunk) < len(target):
            return
        if element.case_sensitive:
            if chunk == target:
                yield end
        elif chunk.lower() == target.lower():
            yield end

    def _match_sequence(
        self, parts: tuple, data: bytes, pos: int, depth: int
    ) -> Iterator[int]:
        if not parts:
            yield pos
            return
        head, tail = parts[0], parts[1:]
        for middle in self._match(head, data, pos, depth + 1):
            yield from self._match_sequence(tail, data, middle, depth)

    def _match_repeat(
        self,
        element: Repetition,
        data: bytes,
        pos: int,
        depth: int,
        count: int,
    ) -> Iterator[int]:
        if count >= element.minimum:
            yield pos
        if element.maximum is not None and count >= element.maximum:
            return
        for middle in self._match(element.element, data, pos, depth + 1):
            if middle == pos:
                # Zero-width repeat body: stop, or we loop forever.
                return
            yield from self._match_repeat(element, data, middle, depth, count + 1)
