"""Parsing RFC 5234 ABNF grammar text into an AST.

Supports the full notation: rule definition (``=``) and incremental
alternatives (``=/``), alternation ``/``, concatenation, repetition
(``*``, ``n*m``, ``n``), groups ``( )``, options ``[ ]``, case-insensitive
string literals ``"..."`` (and RFC 7405 ``%s"..."`` / ``%i"..."``),
numeric values ``%d`` / ``%x`` / ``%b`` with concatenations
(``%d13.10``) and ranges (``%x30-39``), and comments ``;``.

Prose values ``<...>`` are parsed but refuse to *match* — they are,
definitionally, not machine-interpretable, which is part of the paper's
point about informal specification leaking into formal notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class AbnfSyntaxError(ValueError):
    """Raised when ABNF grammar text cannot be parsed."""

    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"ABNF syntax error at {line}:{column}: {message}")


# -- AST -----------------------------------------------------------------


class Element:
    """Base class for ABNF AST nodes."""


@dataclass(frozen=True)
class RuleRef(Element):
    """A reference to another rule (case-insensitive)."""

    name: str


@dataclass(frozen=True)
class CharLiteral(Element):
    """A quoted string literal; ``case_sensitive`` per RFC 7405."""

    text: str
    case_sensitive: bool = False


@dataclass(frozen=True)
class NumSet(Element):
    """A fixed sequence of byte values, e.g. ``%d13.10``."""

    values: Tuple[int, ...]


@dataclass(frozen=True)
class NumRange(Element):
    """An inclusive byte-value range, e.g. ``%x30-39``."""

    low: int
    high: int


@dataclass(frozen=True)
class ProseVal(Element):
    """A ``<free prose>`` description — parseable, never matchable."""

    text: str


@dataclass(frozen=True)
class Concatenation(Element):
    """A sequence of elements that must match in order."""

    parts: Tuple[Element, ...]


@dataclass(frozen=True)
class Alternation(Element):
    """Ordered alternatives (matching tries all, RFC semantics)."""

    choices: Tuple[Element, ...]


@dataclass(frozen=True)
class Repetition(Element):
    """``min`` to ``max`` (None = unbounded) repeats of an element."""

    element: Element
    minimum: int = 0
    maximum: Optional[int] = None


class Grammar:
    """A parsed ABNF grammar: named rules plus the RFC 5234 core rules."""

    def __init__(self, rules: Dict[str, Element]) -> None:
        self.rules = dict(_CORE_RULES)
        self.rules.update(rules)

    def rule(self, name: str) -> Element:
        """Look up a rule, case-insensitively."""
        try:
            return self.rules[name.lower()]
        except KeyError:
            raise KeyError(f"grammar has no rule {name!r}") from None

    def rule_names(self) -> List[str]:
        """All rule names (core rules included), sorted."""
        return sorted(self.rules)

    def undefined_references(self) -> List[str]:
        """Names referenced but never defined (a lint for grammar authors)."""
        seen: set = set()

        def walk(element: Element) -> None:
            if isinstance(element, RuleRef):
                if element.name.lower() not in self.rules:
                    seen.add(element.name.lower())
            elif isinstance(element, (Concatenation, Alternation)):
                parts = (
                    element.parts
                    if isinstance(element, Concatenation)
                    else element.choices
                )
                for part in parts:
                    walk(part)
            elif isinstance(element, Repetition):
                walk(element.element)

        for body in self.rules.values():
            walk(body)
        return sorted(seen)


# RFC 5234 Appendix B core rules, expressed directly as AST.
_CORE_RULES: Dict[str, Element] = {
    "alpha": Alternation((NumRange(0x41, 0x5A), NumRange(0x61, 0x7A))),
    "bit": Alternation((CharLiteral("0"), CharLiteral("1"))),
    "char": NumRange(0x01, 0x7F),
    "cr": NumSet((0x0D,)),
    "crlf": NumSet((0x0D, 0x0A)),
    "ctl": Alternation((NumRange(0x00, 0x1F), NumSet((0x7F,)))),
    "digit": NumRange(0x30, 0x39),
    "dquote": NumSet((0x22,)),
    "hexdig": Alternation(
        (
            NumRange(0x30, 0x39),
            Alternation(
                tuple(CharLiteral(c) for c in "ABCDEF")
            ),
        )
    ),
    "htab": NumSet((0x09,)),
    "lf": NumSet((0x0A,)),
    "lwsp": Repetition(
        Alternation(
            (
                RuleRef("WSP"),
                Concatenation((RuleRef("CRLF"), RuleRef("WSP"))),
            )
        )
    ),
    "octet": NumRange(0x00, 0xFF),
    "sp": NumSet((0x20,)),
    "vchar": NumRange(0x21, 0x7E),
    "wsp": Alternation((NumSet((0x20,)), NumSet((0x09,)))),
}


# -- parser ----------------------------------------------------------------


class _Cursor:
    """Character cursor with line/column tracking for error messages."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> str:
        piece = self.text[self.pos : self.pos + count]
        self.pos += count
        return piece

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def location(self) -> Tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = len(consumed) - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> AbnfSyntaxError:
        line, column = self.location()
        return AbnfSyntaxError(message, line, column)


def parse_grammar(text: str) -> Grammar:
    """Parse ABNF grammar text into a :class:`Grammar`.

    A common indentation prefix (e.g. from a triple-quoted Python string)
    is removed before the line-oriented RFC 5234 rules apply.

    Raises :class:`AbnfSyntaxError` with line/column on malformed input.
    """
    import textwrap

    text = textwrap.dedent(text)
    rules: Dict[str, Element] = {}
    for name, incremental, body_text in _split_rules(text):
        cursor = _Cursor(body_text)
        body = _parse_alternation(cursor)
        _skip_ws(cursor)
        if not cursor.at_end():
            raise cursor.error(f"trailing content in rule {name!r}")
        key = name.lower()
        if incremental:
            if key not in rules:
                raise AbnfSyntaxError(
                    f"incremental alternative for undefined rule {name!r}", 1, 1
                )
            existing = rules[key]
            if isinstance(existing, Alternation):
                choices = existing.choices
            else:
                choices = (existing,)
            extra = body.choices if isinstance(body, Alternation) else (body,)
            rules[key] = Alternation(choices + extra)
        else:
            if key in rules:
                raise AbnfSyntaxError(f"rule {name!r} defined twice", 1, 1)
            rules[key] = body
    if not rules:
        raise AbnfSyntaxError("no rules found", 1, 1)
    return Grammar(rules)


def _strip_comments(line: str) -> str:
    out: List[str] = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch == ";" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _split_rules(text: str) -> List[Tuple[str, bool, str]]:
    """Split grammar text into (name, incremental, body) per rule.

    Continuation lines (starting with whitespace) attach to the previous
    rule, per RFC 5234's line-oriented format.
    """
    entries: List[Tuple[str, bool, List[str]]] = []
    for raw_line in text.splitlines():
        line = _strip_comments(raw_line).rstrip()
        if not line.strip():
            continue
        if line[0] in " \t":
            if not entries:
                raise AbnfSyntaxError("continuation before any rule", 1, 1)
            entries[-1][2].append(line.strip())
            continue
        if "=" not in line:
            raise AbnfSyntaxError(f"rule line without '=': {line!r}", 1, 1)
        head, _, tail = line.partition("=")
        incremental = False
        if tail.startswith("/"):
            incremental = True
            tail = tail[1:]
        name = head.strip()
        if not _is_rulename(name):
            raise AbnfSyntaxError(f"invalid rule name {name!r}", 1, 1)
        entries.append((name, incremental, [tail.strip()]))
    return [(name, inc, " ".join(parts)) for name, inc, parts in entries]


def _is_rulename(name: str) -> bool:
    if not name:
        return False
    if not name[0].isalpha():
        return False
    return all(ch.isalnum() or ch == "-" for ch in name)


def _skip_ws(cursor: _Cursor) -> None:
    while cursor.peek() in (" ", "\t"):
        cursor.advance()


def _parse_alternation(cursor: _Cursor) -> Element:
    choices = [_parse_concatenation(cursor)]
    while True:
        _skip_ws(cursor)
        if cursor.peek() == "/":
            cursor.advance()
            _skip_ws(cursor)
            choices.append(_parse_concatenation(cursor))
        else:
            break
    if len(choices) == 1:
        return choices[0]
    return Alternation(tuple(choices))


def _parse_concatenation(cursor: _Cursor) -> Element:
    parts = [_parse_repetition(cursor)]
    while True:
        _skip_ws(cursor)
        nxt = cursor.peek()
        if nxt in ("", "/", ")", "]"):
            break
        parts.append(_parse_repetition(cursor))
    if len(parts) == 1:
        return parts[0]
    return Concatenation(tuple(parts))


def _parse_repetition(cursor: _Cursor) -> Element:
    _skip_ws(cursor)
    minimum: Optional[int] = None
    maximum: Optional[int] = None
    has_repeat = False
    digits = _take_digits(cursor)
    if cursor.peek() == "*":
        has_repeat = True
        minimum = int(digits) if digits else 0
        cursor.advance()
        upper = _take_digits(cursor)
        maximum = int(upper) if upper else None
    elif digits:
        has_repeat = True
        minimum = maximum = int(digits)
    element = _parse_element(cursor)
    if not has_repeat:
        return element
    if maximum is not None and maximum < (minimum or 0):
        raise cursor.error(f"repeat range {minimum}*{maximum} is inverted")
    return Repetition(element, minimum or 0, maximum)


def _take_digits(cursor: _Cursor) -> str:
    digits = []
    while cursor.peek().isdigit():
        digits.append(cursor.advance())
    return "".join(digits)


def _parse_element(cursor: _Cursor) -> Element:
    ch = cursor.peek()
    if ch == "(":
        cursor.advance()
        inner = _parse_alternation(cursor)
        _skip_ws(cursor)
        if cursor.peek() != ")":
            raise cursor.error("unclosed group")
        cursor.advance()
        return inner
    if ch == "[":
        cursor.advance()
        inner = _parse_alternation(cursor)
        _skip_ws(cursor)
        if cursor.peek() != "]":
            raise cursor.error("unclosed option")
        cursor.advance()
        return Repetition(inner, 0, 1)
    if ch == '"':
        return _parse_char_val(cursor, case_sensitive=False)
    if ch == "%":
        return _parse_terminal(cursor)
    if ch == "<":
        cursor.advance()
        text = []
        while cursor.peek() not in (">", ""):
            text.append(cursor.advance())
        if cursor.peek() != ">":
            raise cursor.error("unclosed prose value")
        cursor.advance()
        return ProseVal("".join(text))
    if ch.isalpha():
        name = [cursor.advance()]
        while cursor.peek().isalnum() or cursor.peek() == "-":
            name.append(cursor.advance())
        return RuleRef("".join(name))
    raise cursor.error(f"unexpected character {ch!r}")


def _parse_char_val(cursor: _Cursor, case_sensitive: bool) -> Element:
    if cursor.peek() != '"':
        raise cursor.error("expected '\"'")
    cursor.advance()
    text = []
    while cursor.peek() not in ('"', ""):
        text.append(cursor.advance())
    if cursor.peek() != '"':
        raise cursor.error("unterminated string literal")
    cursor.advance()
    return CharLiteral("".join(text), case_sensitive)


_BASES = {"b": 2, "d": 10, "x": 16}


def _parse_terminal(cursor: _Cursor) -> Element:
    cursor.advance()  # consume '%'
    marker = cursor.peek().lower()
    if marker in ("s", "i"):
        cursor.advance()
        return _parse_char_val(cursor, case_sensitive=(marker == "s"))
    if marker not in _BASES:
        raise cursor.error(f"unknown terminal base {marker!r}")
    base = _BASES[marker]
    cursor.advance()
    first = _take_base_digits(cursor, base)
    if cursor.peek() == "-":
        cursor.advance()
        second = _take_base_digits(cursor, base)
        low, high = int(first, base), int(second, base)
        if low > high:
            raise cursor.error(f"inverted range %{marker}{first}-{second}")
        return NumRange(low, high)
    values = [int(first, base)]
    while cursor.peek() == ".":
        cursor.advance()
        values.append(int(_take_base_digits(cursor, base), base))
    return NumSet(tuple(values))


_BASE_ALPHABETS = {2: "01", 10: "0123456789", 16: "0123456789abcdefABCDEF"}


def _take_base_digits(cursor: _Cursor, base: int) -> str:
    alphabet = _BASE_ALPHABETS[base]
    digits = []
    while cursor.peek() and cursor.peek() in alphabet:
        digits.append(cursor.advance())
    if not digits:
        raise cursor.error(f"expected base-{base} digits")
    return "".join(digits)
