"""An RFC 5234 ABNF engine: grammar parser plus matcher.

The paper (§2.1) cites ABNF as the formal-but-syntactic way protocols are
described today: "a readily machine-parseable definition [that] remains,
essentially, a syntactic notation".  This package implements that
comparator in full — parse an ABNF grammar from text, then match byte
strings against any rule — so the evaluation can run real ABNF next to the
DSL (experiment E10) and the DSL's ABNF exporter has a consumer to
validate against.
"""

from repro.abnf.grammar import (
    AbnfSyntaxError,
    Alternation,
    CharLiteral,
    Concatenation,
    Grammar,
    NumRange,
    NumSet,
    Repetition,
    RuleRef,
    parse_grammar,
)
from repro.abnf.matcher import AbnfMatchError, Matcher

__all__ = [
    "parse_grammar",
    "Grammar",
    "Matcher",
    "AbnfSyntaxError",
    "AbnfMatchError",
    "Alternation",
    "Concatenation",
    "Repetition",
    "RuleRef",
    "CharLiteral",
    "NumRange",
    "NumSet",
]
