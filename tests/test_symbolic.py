"""The symbolic expression language: evaluation, substitution, unification."""

import pytest
from hypothesis import given, strategies as st

from repro.core.symbolic import (
    BinOp,
    Const,
    FieldRef,
    SymbolicError,
    UnboundVariableError,
    UnificationError,
    Var,
    as_expr,
    iter_subexpressions,
    this,
    unify,
)


class TestConstruction:
    def test_as_expr_wraps_ints(self):
        assert as_expr(5) == Const(5)

    def test_as_expr_rejects_bools(self):
        with pytest.raises(TypeError):
            as_expr(True)

    def test_as_expr_passes_through(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_this_builds_field_refs(self):
        ref = this.length
        assert isinstance(ref, FieldRef)
        assert ref.field_name == "length"

    def test_operator_sugar_builds_trees(self):
        expr = (Var("n") + 1) * 4 - 20
        assert expr.evaluate({"n": 6}) == 8

    def test_reflected_operators(self):
        assert (1 + Var("n")).evaluate({"n": 2}) == 3
        assert (10 - Var("n")).evaluate({"n": 2}) == 8
        assert (3 * Var("n")).evaluate({"n": 2}) == 6


class TestEvaluation:
    def test_unbound_variable_is_reported(self):
        with pytest.raises(UnboundVariableError) as excinfo:
            Var("seq").evaluate({})
        assert excinfo.value.name == "seq"

    def test_division_by_zero_is_symbolic_error(self):
        with pytest.raises(SymbolicError, match="division by zero"):
            (Var("a") // Var("b")).evaluate({"a": 1, "b": 0})

    def test_modulo(self):
        assert (Var("s") % 256).evaluate({"s": 257}) == 1

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arithmetic_agrees_with_python(self, a, b):
        env = {"a": a, "b": b}
        assert (Var("a") + Var("b")).evaluate(env) == a + b
        assert (Var("a") - Var("b")).evaluate(env) == a - b
        assert (Var("a") * Var("b")).evaluate(env) == a * b
        if b != 0:
            assert (Var("a") // Var("b")).evaluate(env) == a // b
            assert (Var("a") % Var("b")).evaluate(env) == a % b


class TestStructuralEquality:
    def test_equal_trees_compare_equal(self):
        assert Var("seq") + 1 == Var("seq") + 1
        assert hash(Var("seq") + 1) == hash(Var("seq") + 1)

    def test_different_trees_differ(self):
        assert Var("seq") + 1 != Var("seq") + 2
        assert Var("a") != Var("b")
        assert Const(1) != Var("a")

    def test_comparisons_are_predicates_not_equality(self):
        predicate = Var("a") < Var("b")
        assert predicate.evaluate({"a": 1, "b": 2})
        assert not predicate.evaluate({"a": 2, "b": 1})

    def test_eq_predicate_method(self):
        predicate = Var("a").eq(Var("b"))
        assert predicate.evaluate({"a": 3, "b": 3})
        assert not predicate.evaluate({"a": 3, "b": 4})


class TestSubstitution:
    def test_substitute_variable(self):
        expr = (Var("n") + 1).substitute({"n": 5})
        assert expr == Const(6)

    def test_partial_substitution_stays_symbolic(self):
        expr = (Var("n") + Var("m")).substitute({"n": 5})
        assert expr.free_variables() == frozenset({"m"})
        assert expr.evaluate({"m": 2}) == 7

    def test_substitute_with_expression(self):
        expr = Var("n").substitute({"n": Var("k") * 2})
        assert expr.evaluate({"k": 3}) == 6


class TestPredicates:
    def test_conjunction_disjunction_negation(self):
        p = (Var("x") > 0) & (Var("x") < 10)
        assert p.evaluate({"x": 5})
        assert not p.evaluate({"x": 15})
        q = (Var("x") < 0) | (Var("x") > 10)
        assert q.evaluate({"x": 11})
        assert not q.evaluate({"x": 5})
        assert (~p).evaluate({"x": 15})

    def test_free_variables_union(self):
        p = (Var("a") > 0) & (Var("b") < 1)
        assert p.free_variables() == frozenset({"a", "b"})


class TestUnification:
    def test_plain_variable_binds(self):
        assert unify(Var("seq"), 7) == {"seq": 7}

    def test_constant_matches_or_fails(self):
        assert unify(Const(3), 3) == {}
        with pytest.raises(UnificationError):
            unify(Const(3), 4)

    def test_rebinding_consistent_value_ok(self):
        bindings = {"seq": 7}
        assert unify(Var("seq"), 7, bindings) == {"seq": 7}

    def test_rebinding_conflict_fails(self):
        with pytest.raises(UnificationError):
            unify(Var("seq"), 8, {"seq": 7})

    def test_addition_pattern_inverts(self):
        assert unify(Var("seq") + 1, 5) == {"seq": 4}

    def test_subtraction_patterns_invert_both_sides(self):
        assert unify(Var("n") - 2, 5) == {"n": 7}
        assert unify(10 - Var("n"), 4) == {"n": 6}

    def test_multiplication_requires_divisibility(self):
        assert unify(Var("n") * 4, 20) == {"n": 5}
        with pytest.raises(UnificationError):
            unify(Var("n") * 4, 21)

    def test_ground_compound_is_checked(self):
        assert unify(Var("n") + Var("m"), 5, {"n": 2, "m": 3}) == {"n": 2, "m": 3}
        with pytest.raises(UnificationError):
            unify(Var("n") + Var("m"), 6, {"n": 2, "m": 3})

    def test_two_unknowns_rejected(self):
        with pytest.raises(UnificationError, match="both sides"):
            unify(Var("n") + Var("m"), 5)

    @given(st.integers(0, 10_000), st.integers(1, 100))
    def test_unify_inverts_addition_for_all_values(self, value, offset):
        bindings = unify(Var("x") + offset, value + offset)
        assert bindings["x"] == value


class TestIteration:
    def test_iter_subexpressions_preorder(self):
        expr = (Var("a") + 1) * Var("b")
        nodes = list(iter_subexpressions(expr))
        assert nodes[0] is expr
        assert Var("a") in nodes and Const(1) in nodes and Var("b") in nodes
