"""The serving plane's pluggable event-loop policy.

uvloop is an *optional* accelerator: requesting it where it isn't
installed must resolve to a clean asyncio fallback (with a visible
note), never a crash — the CLI contract for ``--loop`` and the
``REPRO_SERVE_LOOP`` environment override.  A fake uvloop module stands
in for the real one so the selection and run paths are covered either
way the container is built.
"""

import asyncio
import sys
import types

import pytest

from repro.serve.loop import (
    LOOP_CHOICES,
    LOOP_ENV,
    LoopChoice,
    choose_loop,
    run,
    uvloop_available,
)


class _FakeUvloop(types.ModuleType):
    """Stands in for uvloop: records run() calls, delegates to asyncio."""

    def __init__(self):
        super().__init__("uvloop")
        self.ran = 0

    def run(self, coro):
        self.ran += 1
        return asyncio.run(coro)


@pytest.fixture
def fake_uvloop(monkeypatch):
    fake = _FakeUvloop()
    monkeypatch.setitem(sys.modules, "uvloop", fake)
    return fake


@pytest.fixture
def no_uvloop(monkeypatch):
    monkeypatch.setitem(sys.modules, "uvloop", None)  # import -> ImportError


class TestChooseLoop:
    def test_default_is_auto(self, no_uvloop):
        choice = choose_loop(env={})
        assert choice == LoopChoice("auto", "asyncio", None)

    def test_explicit_asyncio_never_probes_uvloop(self, fake_uvloop):
        choice = choose_loop("asyncio", env={})
        assert choice == LoopChoice("asyncio", "asyncio", None)

    def test_auto_prefers_uvloop_when_importable(self, fake_uvloop):
        choice = choose_loop("auto", env={})
        assert choice == LoopChoice("auto", "uvloop", None)

    def test_uvloop_without_uvloop_falls_back_with_note(self, no_uvloop):
        choice = choose_loop("uvloop", env={})
        assert choice.name == "asyncio"  # clean skip, not a crash
        assert choice.requested == "uvloop"
        assert choice.note and "not installed" in choice.note

    def test_environment_override(self, no_uvloop):
        choice = choose_loop(env={LOOP_ENV: "asyncio"})
        assert choice == LoopChoice("asyncio", "asyncio", None)

    def test_explicit_request_beats_environment(self, no_uvloop):
        choice = choose_loop("uvloop", env={LOOP_ENV: "asyncio"})
        assert choice.requested == "uvloop"

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown loop policy"):
            choose_loop("gevent", env={})

    def test_names_are_case_insensitive(self, no_uvloop):
        assert choose_loop("ASYNCIO", env={}).name == "asyncio"

    def test_availability_probe(self, fake_uvloop):
        assert uvloop_available()


class TestRun:
    def test_runs_under_asyncio(self, no_uvloop):
        async def main():
            return 41 + 1

        assert run(main(), choose_loop("asyncio", env={})) == 42

    def test_runs_under_uvloop_runner(self, fake_uvloop):
        async def main():
            return "served"

        choice = choose_loop("uvloop", env={})
        assert choice.name == "uvloop"
        assert run(main(), choice) == "served"
        assert fake_uvloop.ran == 1

    def test_fallback_note_is_surfaced(self, no_uvloop, capsys):
        async def main():
            return 0

        run(main(), choose_loop("uvloop", env={}))
        assert "not installed" in capsys.readouterr().err


class TestCliWiring:
    def test_serve_parser_accepts_loop_flag(self):
        from repro.serve.__main__ import build_parser

        args = build_parser().parse_args(["serve", "arq", "--loop", "uvloop"])
        assert args.loop == "uvloop"
        assert set(LOOP_CHOICES) == {"auto", "asyncio", "uvloop"}

    def test_serve_parser_rejects_unknown_loop(self, capsys):
        from repro.serve.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "arq", "--loop", "trio"])
