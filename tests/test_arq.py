"""The paper's §3.4 ARQ: machine guarantees and end-to-end transfers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import InvalidTransitionError, Machine, UnverifiedPayloadError
from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import (
    ACK_PACKET,
    ARQ_PACKET,
    build_receiver_spec,
    build_sender_spec,
    check_transfer_invariants,
    run_transfer,
)


def verified_ack(seq):
    return ACK_PACKET.verify(ACK_PACKET.make(seq=seq))


def verified_data(seq, payload=b"x"):
    return ARQ_PACKET.verify(
        ARQ_PACKET.make(seq=seq, length=len(payload), payload=payload)
    )


class TestPaperGuarantees:
    """The four §3.4 guarantees, each as an executable check."""

    def test_guarantee_1_packet_format_is_described(self):
        assert ARQ_PACKET.field_names == ("seq", "chk", "length", "payload")
        assert "chk_valid" in ARQ_PACKET.constraint_names

    def test_guarantee_2_no_processing_of_unverified_packets(self):
        machine = Machine(build_receiver_spec())
        raw = ARQ_PACKET.make(seq=0, length=1, payload=b"x")
        with pytest.raises(UnverifiedPayloadError):
            machine.exec_trans("RECV", raw)

    def test_guarantee_3_timeout_cannot_fire_after_ack(self):
        """'timeout cannot occur if an acknowledgement has been received
        and acted on' — after OK the machine is in Ready, where TIMEOUT
        does not exist."""
        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"data")
        machine.exec_trans("OK", verified_ack(0))
        with pytest.raises(InvalidTransitionError):
            machine.exec_trans("TIMEOUT")

    def test_guarantee_4_sending_ends_consistently(self):
        """Every run of the sender ends in Ready, Timeout or Sent — never
        stuck waiting."""
        from repro.modelcheck import explore

        spec = build_sender_spec(max_seq_bits=3)
        result = explore(spec, input_domains={})
        assert result.deadlock_free
        assert result.all_can_reach_final() == []


class TestSenderMachine:
    def test_ok_advances_sequence(self):
        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"one")
        machine.exec_trans("OK", verified_ack(0))
        assert machine.current.values == (1,)

    def test_ok_guard_rejects_wrong_seq_ack(self):
        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"one")
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("OK", verified_ack(5))

    def test_fail_returns_to_same_sequence(self):
        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"one")
        machine.exec_trans("FAIL")
        assert machine.current.name == "Ready"
        assert machine.current.values == (0,)

    def test_timeout_then_retry(self):
        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"one")
        machine.exec_trans("TIMEOUT")
        assert machine.in_state("Timeout")
        machine.exec_trans("RETRY")
        assert machine.in_state("Ready")

    def test_finish_is_terminal(self):
        machine = Machine(build_sender_spec())
        machine.exec_trans("FINISH")
        assert machine.is_finished


class TestReceiverMachine:
    def test_recv_advances_on_expected(self):
        machine = Machine(build_receiver_spec())
        machine.exec_trans("RECV", verified_data(0))
        assert machine.current.values == (1,)

    def test_recv_guard_rejects_wrong_seq(self):
        machine = Machine(build_receiver_spec())
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("RECV", verified_data(3))

    def test_dup_ack_stays_put(self):
        machine = Machine(build_receiver_spec())
        machine.exec_trans("RECV", verified_data(0))
        machine.exec_trans("DUP_ACK", verified_data(0))
        assert machine.current.values == (1,)

    def test_sequence_wraps_at_255(self):
        spec = build_receiver_spec()
        machine = Machine(spec, initial=spec.states["ReadyFor"].instance(255))
        machine.exec_trans("RECV", verified_data(255))
        assert machine.current.values == (0,)


class TestTransfers:
    MESSAGES = [f"message-{i:04d}".encode() for i in range(25)]

    def test_clean_channel(self):
        report = run_transfer(self.MESSAGES)
        assert report.success
        assert report.retransmissions == 0
        assert report.violations == []

    def test_lossy_channel_still_delivers(self):
        report = run_transfer(
            self.MESSAGES, ChannelConfig(loss_rate=0.3), seed=1
        )
        assert report.success
        assert report.retransmissions > 0
        assert report.violations == []

    def test_corrupting_channel_still_delivers(self):
        report = run_transfer(
            self.MESSAGES, ChannelConfig(corruption_rate=0.25), seed=2
        )
        assert report.success
        assert report.violations == []

    def test_duplicating_reordering_channel(self):
        config = ChannelConfig(
            duplication_rate=0.2, reorder_rate=0.3, jitter=0.02
        )
        report = run_transfer(self.MESSAGES, config, seed=3)
        assert report.success
        assert report.violations == []

    def test_hostile_channel_never_violates_invariants(self):
        """Even when the transfer fails, nothing wrong is ever delivered."""
        config = ChannelConfig(
            loss_rate=0.6, corruption_rate=0.3, duplication_rate=0.2
        )
        report = run_transfer(
            self.MESSAGES, config, seed=4, max_retries=3
        )
        assert report.violations == []  # delivered prefix is always faithful

    def test_empty_message_list_finishes_immediately(self):
        report = run_transfer([])
        assert report.success
        assert report.data_frames_sent == 0

    def test_oversized_message_rejected(self):
        from repro.protocols.arq import ArqSender
        from repro.netsim import Node, Simulator

        sim = Simulator()
        with pytest.raises(ValueError, match="at most"):
            ArqSender(sim, Node(sim, "s"), "r", [b"x" * 300])

    def test_more_than_256_messages_wraps_sequence_space(self):
        messages = [bytes([i % 256]) for i in range(300)]
        report = run_transfer(messages, ChannelConfig(loss_rate=0.05), seed=5)
        assert report.success
        assert report.violations == []

    @settings(deadline=None, max_examples=15)
    @given(
        loss=st.floats(0.0, 0.45),
        corruption=st.floats(0.0, 0.25),
        seed=st.integers(0, 1000),
    )
    def test_invariants_hold_for_any_fault_pattern(self, loss, corruption, seed):
        """Property: whatever the channel does, the DSL ARQ never delivers
        wrong, duplicated or reordered data (the paper's correctness-by-
        construction claim, E1)."""
        messages = [f"m{i}".encode() for i in range(8)]
        config = ChannelConfig(loss_rate=loss, corruption_rate=corruption)
        report = run_transfer(messages, config, seed=seed, max_retries=60)
        assert report.violations == []


class TestAdaptiveRto:
    MESSAGES = [bytes([i]) * 8 for i in range(20)]

    def test_adaptive_learns_slow_path(self):
        """On a 2s-RTT path a 0.5s fixed RTO fires constantly; the
        estimator learns the real RTT and stops the spurious storms."""
        slow = ChannelConfig(delay=1.0)
        fixed = run_transfer(self.MESSAGES, slow, seed=1, rto=0.5, max_retries=300)
        adaptive = run_transfer(
            self.MESSAGES, slow, seed=1, rto=0.5, max_retries=300,
            adaptive_rto=True,
        )
        assert fixed.success and adaptive.success
        assert adaptive.retransmissions < fixed.retransmissions / 3

    def test_adaptive_still_correct_under_loss(self):
        report = run_transfer(
            self.MESSAGES, ChannelConfig(loss_rate=0.3), seed=2,
            max_retries=300, adaptive_rto=True, max_rto=1.0,
        )
        assert report.success
        assert report.violations == []

    def test_karn_rule_applied(self):
        """Samples are suppressed after retransmissions (no poisoned RTTs)."""
        from repro.netsim import DuplexLink, Node, Simulator
        from repro.protocols.arq import ArqReceiver, ArqSender

        sim = Simulator()
        s, r = Node(sim, "s"), Node(sim, "r")
        DuplexLink(sim, s, r, ChannelConfig(loss_rate=0.4, delay=0.05), seed=4)
        ArqReceiver(sim, r, "s")
        sender = ArqSender(
            sim, s, "r", self.MESSAGES, max_retries=300, adaptive_rto=True
        )
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert sender.done
        # Some exchanges needed retransmission, so samples < messages.
        assert 0 < sender.estimator.samples_taken < len(self.MESSAGES)
        assert sender.estimator.backoffs > 0


class TestInvariantChecker:
    def test_faithful_prefix_passes(self):
        msgs = [b"a", b"b", b"c"]
        assert check_transfer_invariants(msgs, [b"a", b"b"]) == []
        assert check_transfer_invariants(msgs, msgs) == []

    def test_corruption_detected(self):
        violations = check_transfer_invariants([b"a", b"b"], [b"a", b"X"])
        assert len(violations) == 1

    def test_duplication_detected(self):
        violations = check_transfer_invariants([b"a"], [b"a", b"a"])
        assert violations

    def test_reordering_detected(self):
        violations = check_transfer_invariants([b"a", b"b"], [b"b", b"a"])
        assert violations
