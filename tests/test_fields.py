"""Field primitives: shapes, encoding, decoding, dependent lengths."""

import pytest

from repro.core.fields import (
    Bytes,
    ChecksumField,
    FieldValueError,
    Flag,
    Reserved,
    UInt,
    UIntList,
)
from repro.core.symbolic import Var, this
from repro.wire.bits import BitReader, BitWriter, ByteOrder


class TestUInt:
    def test_width_bounds(self):
        with pytest.raises(ValueError):
            UInt("x", bits=0)
        with pytest.raises(ValueError):
            UInt("x", bits=65)

    def test_const_must_fit(self):
        with pytest.raises(ValueError, match="does not fit"):
            UInt("version", bits=4, const=16)

    def test_value_range_checked(self):
        field = UInt("x", bits=4)
        with pytest.raises(FieldValueError, match="out of range"):
            field.check_value(16, {})
        with pytest.raises(FieldValueError):
            field.check_value(-1, {})

    def test_bool_rejected_as_value(self):
        field = UInt("x", bits=8)
        with pytest.raises(FieldValueError, match="expected int"):
            field.check_value(True, {})

    def test_encode_decode_round_trip(self):
        field = UInt("x", bits=12)
        writer = BitWriter()
        field.encode(writer, 0xABC, {})
        writer.pad_to_byte()
        assert field.decode(BitReader(writer.getvalue()), {}) == 0xABC

    def test_little_endian_needs_whole_bytes(self):
        with pytest.raises(ValueError, match="whole bytes"):
            UInt("x", bits=12, byteorder=ByteOrder.LITTLE)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            UInt("not a name", bits=8)


class TestFlagAndReserved:
    def test_flag_round_trip(self):
        field = Flag("urgent")
        writer = BitWriter()
        field.encode(writer, True, {})
        field.encode(writer, False, {})
        writer.pad_to_byte()
        reader = BitReader(writer.getvalue())
        assert field.decode(reader, {}) is True
        assert field.decode(reader, {}) is False

    def test_flag_rejects_non_bool(self):
        with pytest.raises(FieldValueError):
            Flag("f").check_value(2, {})

    def test_reserved_encodes_fixed_value(self):
        field = Reserved("pad", bits=6)
        writer = BitWriter()
        field.encode(writer, None, {})
        writer.pad_to_byte()
        assert writer.getvalue() == b"\x00"

    def test_reserved_rejects_other_values(self):
        with pytest.raises(FieldValueError, match="reserved"):
            Reserved("pad", bits=3).check_value(1, {})

    def test_reserved_is_computed(self):
        assert Reserved("pad", bits=3).is_computed


class TestBytes:
    def test_fixed_length(self):
        field = Bytes("tag", length=4)
        assert field.fixed_bit_width() == 32
        with pytest.raises(FieldValueError, match="expected 4 bytes"):
            field.check_value(b"abc", {})

    def test_dependent_length_uses_environment(self):
        field = Bytes("payload", length=this.length)
        field.check_value(b"abc", {"length": 3})
        with pytest.raises(FieldValueError):
            field.check_value(b"abcd", {"length": 3})

    def test_dependent_length_expression(self):
        field = Bytes("options", length=(this.ihl - 5) * 4)
        field.check_value(b"", {"ihl": 5})
        field.check_value(b"\x00" * 8, {"ihl": 7})

    def test_negative_computed_length_rejected(self):
        field = Bytes("options", length=this.ihl - 5)
        reader = BitReader(b"\x00\x00")
        with pytest.raises(FieldValueError, match="evaluated to"):
            field.decode(reader, {"ihl": 3})

    def test_greedy_reads_remaining(self):
        field = Bytes("rest")
        assert field.is_greedy
        reader = BitReader(b"abcdef")
        reader.read_bytes(2)
        assert field.decode(reader, {}) == b"cdef"


class TestUIntList:
    def test_dependent_count(self):
        field = UIntList("samples", element_bits=16, count=this.n)
        writer = BitWriter()
        field.encode(writer, [1, 2, 3], {"n": 3})
        decoded = field.decode(BitReader(writer.getvalue()), {"n": 3})
        assert decoded == (1, 2, 3)

    def test_count_mismatch_rejected(self):
        field = UIntList("samples", element_bits=8, count=2)
        with pytest.raises(FieldValueError, match="expected 2 elements"):
            field.check_value([1], {})

    def test_element_range_checked(self):
        field = UIntList("nibbles", element_bits=4, count=1)
        with pytest.raises(FieldValueError, match="does not fit"):
            field.check_value([16], {})

    def test_fixed_width_when_count_constant(self):
        assert UIntList("x", element_bits=4, count=6).fixed_bit_width() == 24


class TestChecksumField:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown checksum"):
            ChecksumField("chk", algorithm="sha-zam", over=("a",))

    def test_width_follows_algorithm(self):
        assert ChecksumField("chk", algorithm="crc32", over=("a",)).bits == 32
        assert ChecksumField("chk", algorithm="xor8", over=("a",)).bits == 8

    def test_whole_packet_sentinel(self):
        field = ChecksumField("chk", algorithm="internet", over="*")
        assert field.covers_whole_packet
        assert field.referenced_fields() == frozenset()

    def test_bad_over_string_rejected(self):
        with pytest.raises(ValueError, match="sentinel"):
            ChecksumField("chk", algorithm="xor8", over="everything")

    def test_empty_over_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ChecksumField("chk", algorithm="xor8", over=())

    def test_is_computed(self):
        assert ChecksumField("chk", algorithm="xor8", over=("a",)).is_computed
