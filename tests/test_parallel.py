"""``repro.parallel``: sharded batches, parallel conformance, crash recovery.

The contract under test everywhere here is *transparency*: turning the
pool on (or having a worker die mid-batch) may change timing, but never
results — batch outputs, conformance findings, coverage, and corpus
files must be byte-identical to the serial run.
"""

import random

import pytest

from repro import fastpath, obs, parallel
from repro.conformance.registry import all_spec_entries
from repro.conformance.runner import run_all
from repro.fastpath import batch
from repro.parallel.confrun import execute_unit, plan_units, run_all_parallel
from repro.parallel.policy import _from_env
from repro.parallel.pool import CallError


@pytest.fixture(autouse=True)
def _clean_parallel():
    """Every test starts serial and leaves no pool (or policy) behind."""
    parallel.set_policy(parallel.Parallel(workers=0))
    yield
    parallel.shutdown()
    parallel.set_policy(_from_env())


@pytest.fixture
def tcp_corpus():
    entry = next(e for e in all_spec_entries() if e.name == "TcpHeader")
    rng = random.Random(11)
    packets = [entry.generate(rng) for _ in range(300)]
    values = [p._values for p in packets]
    wires = [entry.spec.encode(p) for p in packets]
    return entry.spec, values, wires


class TestPolicy:
    def test_token_resolution(self):
        assert parallel.resolve_workers("off") == 0
        assert parallel.resolve_workers("none") == 0
        assert parallel.resolve_workers("0") == 0
        assert parallel.resolve_workers("1") == 0  # one worker buys nothing
        assert parallel.resolve_workers("3") == 3
        assert parallel.resolve_workers("auto") >= 0

    def test_use_restores_policy(self):
        before = parallel.get_policy()
        with parallel.use(workers=4, min_batch=7):
            assert parallel.get_policy().workers == 4
            assert parallel.get_policy().min_batch == 7
        assert parallel.get_policy() == before

    def test_small_batches_never_shard(self):
        with parallel.use(workers=2, min_batch=1000):
            assert parallel.maybe_pool(999) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            parallel.Parallel(workers=-1)


class TestShardedBatches:
    def test_sharded_outputs_identical_to_serial(self, tcp_corpus):
        spec, values, wires = tcp_corpus
        with fastpath.use(mode="always"):
            serial_enc = batch.encode_many(spec, values)
            serial_dec = batch.decode_many(spec, wires)
            with parallel.use(workers=2, min_batch=64):
                sharded_enc = batch.encode_many(spec, values)
                sharded_dec = batch.decode_many(spec, wires)
        assert sharded_enc == serial_enc
        assert sharded_dec == serial_dec
        stats = parallel.stats()
        assert stats["batches_sharded"] == 2
        assert stats["chunks"] == 4
        assert stats["worker_failures"] == 0

    def test_source_shipped_once_per_worker(self, tcp_corpus):
        spec, values, _ = tcp_corpus
        with fastpath.use(mode="always"), parallel.use(workers=2, min_batch=64):
            batch.encode_many(spec, values)
            first = parallel.stats()["source_ships"]
            batch.encode_many(spec, values)
        assert first == 2  # one ship per worker
        assert parallel.stats()["source_ships"] == 2  # warm cache: no re-ship

    def test_off_policy_is_serial(self, tcp_corpus):
        spec, values, _ = tcp_corpus
        with fastpath.use(mode="always"), parallel.use(workers=0):
            batch.encode_many(spec, values)
        assert parallel.stats()["batches_sharded"] == 0


class TestCrashRecovery:
    def test_worker_crash_falls_back_then_recovers(self, tcp_corpus):
        spec, values, _ = tcp_corpus
        instr = obs.enable()
        instr.registry.reset()
        try:
            with fastpath.use(mode="always"):
                expected = batch.encode_many(spec, values)
                with parallel.use(workers=2, min_batch=64):
                    pool = parallel.get_pool()
                    pool.inject_crash(0)
                    crashed = batch.encode_many(spec, values)
                    assert crashed == expected  # in-process fallback, same bytes
                    stats = parallel.stats()
                    assert stats["worker_failures"] >= 1
                    assert stats["fallbacks"] >= 1
                    assert instr.registry.value(
                        "parallel.worker_failures", reason="crash"
                    ) >= 1
                    # The pool respawned the dead slot: the next batch
                    # shards again instead of limping along serial.
                    sharded_before = stats["batches_sharded"]
                    again = batch.encode_many(spec, values)
                    assert again == expected
                    assert parallel.stats()["batches_sharded"] > sharded_before
                    assert pool.alive()
        finally:
            obs.disable()

    def test_call_errors_are_lenient(self):
        with parallel.use(workers=2):
            pool = parallel.get_pool()
            results = pool.run_calls(
                [
                    ("repro.conformance.runner:derive_rng", {"seed": 1}),
                    ("repro.no_such_module:missing", {}),
                ]
            )
        assert not isinstance(results[0], CallError)
        assert isinstance(results[1], CallError)
        assert "no_such_module" in results[1].message


class TestParallelConformance:
    def test_plan_matches_serial_budget_split(self):
        units = plan_units(400, ("fuzz", "machine"), None, None, 600)
        kinds = {u["kind"] for u in units}
        assert kinds == {"fuzz", "machine"}
        fuzz = [u for u in units if u["kind"] == "fuzz"]
        assert all(u["budget"] == max(1, 400 // len(fuzz)) for u in fuzz)
        machine = [u for u in units if u["kind"] == "machine"]
        assert all(u["shrink_budget"] == 300 for u in machine)

    def test_findings_identical_to_serial(self, tmp_path):
        serial_corpus = tmp_path / "serial.jsonl"
        parallel_corpus = tmp_path / "parallel.jsonl"
        serial = run_all(seed=5, budget=120, corpus_path=str(serial_corpus))
        report = run_all_parallel(
            workers=2, seed=5, budget=120, corpus_path=str(parallel_corpus)
        )
        assert [e.engine for e in report.engines] == [
            e.engine for e in serial.engines
        ]
        for mine, theirs in zip(report.engines, serial.engines):
            assert mine.cases == theirs.cases
            assert mine.findings == theirs.findings
        assert report.coverage == serial.coverage
        assert parallel_corpus.read_bytes() == serial_corpus.read_bytes()

    def test_merged_obs_counters_match_serial(self):
        def counters():
            return {
                (name, tuple(sorted(entry["labels"].items()))): entry["value"]
                for name, entries in obs.get_default().registry.snapshot().items()
                for entry in entries
                if entry["kind"] == "counter" and entry["value"]
            }

        instr = obs.enable()
        try:
            instr.registry.reset()
            run_all(seed=9, budget=80, engines=("fuzz",))
            serial = counters()
            instr.registry.reset()
            run_all_parallel(workers=2, seed=9, budget=80, engines=("fuzz",))
            merged = counters()
        finally:
            obs.disable()
        assert merged == serial

    def test_failed_unit_reruns_in_process(self, monkeypatch):
        # Break every remote call; the parent must quietly redo each unit
        # itself and still produce the serial report.
        from repro.parallel import confrun

        monkeypatch.setattr(confrun, "_EXECUTE", "repro.no_such_module:missing")
        serial = run_all(seed=2, budget=60, engines=("machine",))
        report = run_all_parallel(workers=2, seed=2, budget=60, engines=("machine",))
        assert report.engines[0].cases == serial.engines[0].cases
        assert report.engines[0].findings == serial.engines[0].findings
        assert report.coverage == serial.coverage

    def test_execute_unit_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown conformance unit"):
            execute_unit("quantum", "x", 0, 1, 1)
