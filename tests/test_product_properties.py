"""Property-based tests of the LTS composition semantics."""

import random

from hypothesis import given, settings, strategies as st

from repro.modelcheck.product import Lts, compose

LABELS = ["a", "b", "c", "tau1", "tau2"]


def random_lts(name, seed, states=4, shared_labels=("a", "b"), local_label=None):
    """A deterministic random LTS over a fixed label alphabet."""
    rng = random.Random(seed)
    alphabet = set(shared_labels)
    if local_label:
        alphabet.add(local_label)
    edges_table = {}
    for state in range(states):
        outgoing = []
        for label in sorted(alphabet):
            if rng.random() < 0.6:
                outgoing.append((label, rng.randrange(states)))
        edges_table[state] = outgoing

    def edges(state):
        return list(edges_table.get(state, []))

    return Lts(name, 0, edges, frozenset(alphabet))


def reachable_alone(lts, cap=10_000):
    result = compose([lts], max_states=cap)
    return result.states_visited


class TestCompositionLaws:
    @given(seed_a=st.integers(0, 500), seed_b=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_product_no_larger_than_cartesian(self, seed_a, seed_b):
        a = random_lts("a", seed_a, local_label="tau1")
        b = random_lts("b", seed_b, local_label="tau2")
        product = compose([a, b], max_states=100_000)
        assert product.states_visited <= 4 * 4

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_chaos_component_preserves_reachability(self, seed):
        """Composing with a one-state component that always offers every
        shared label leaves the other component's reachable set intact."""
        a = random_lts("a", seed, shared_labels=("a", "b"), local_label="tau1")

        def chaos_edges(state):
            return [("a", 0), ("b", 0)]

        chaos = Lts("chaos", 0, chaos_edges, frozenset({"a", "b"}))
        alone = reachable_alone(a)
        together = compose([a, chaos], max_states=100_000)
        assert together.states_visited == alone

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_composition_is_order_insensitive_in_size(self, seed):
        a = random_lts("a", seed, local_label="tau1")
        b = random_lts("b", seed + 1000, local_label="tau2")
        ab = compose([a, b], max_states=100_000)
        ba = compose([b, a], max_states=100_000)
        assert ab.states_visited == ba.states_visited
        assert ab.edges_traversed == ba.edges_traversed

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_blocking_component_only_removes_behaviour(self, seed):
        """Synchronizing with any component never *adds* reachable states
        for the original component's projection."""
        a = random_lts("a", seed, shared_labels=("a", "b"), local_label="tau1")
        b = random_lts("b", seed + 77, shared_labels=("a", "b"))
        product = compose([a, b], max_states=100_000)
        projected = {state[0] for state in product.reachable_states()}
        assert len(projected) <= reachable_alone(a)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_paths_replay(self, seed):
        """Every reported path actually drives the product to its state."""
        a = random_lts("a", seed, local_label="tau1")
        b = random_lts("b", seed + 13, local_label="tau2")
        product = compose([a, b], max_states=100_000)
        states = product.reachable_states()
        target = states[min(len(states) - 1, 3)]
        path = product.path_to(target)
        # Replay by following edges greedily along the recorded labels.
        current = product.initial
        for label in path:
            successors = [
                s for l, s in product.successors(current) if l == label
            ]
            assert successors, f"label {label} not available at {current}"
            # The path came from the predecessor map, so one successor is
            # on the recorded route; follow the one that can still reach
            # the target (any choice consistent with the map works here
            # because we replay the exact recorded predecessor chain).
            current = successors[0]
            if current == target:
                break
        # The final state after the full path must be the target when we
        # followed the deterministic single-choice chain.
        if all(
            len([s for l, s in product.successors(x)]) <= 1
            for x in states
        ):
            assert current == target
