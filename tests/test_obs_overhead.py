"""The observability overhead guard (CI gate).

The contract of ``repro.obs`` is that *instrumented but disabled* code is
effectively free: the hot paths (``Machine.exec_trans``,
``codec.decode_packet``) pay roughly one attribute check when the
injected instrumentation is off.  These tests hold that contract to a
number: the best-of-trials runtime with a disabled ``Instrumentation``
must stay within 1.10x of the no-op-instrumentation baseline
(``NULL_OBS``, the permanently-off singleton — the closest runtime
stand-in for uninstrumented code, since both take the identical fast
path).

Comparing the *minimum* of interleaved trials keeps the ratio robust to
scheduler noise — load spikes only ever slow a sample down, while any
systematic overhead shows up in every sample including the fastest; the
loops are long enough that timer resolution is irrelevant.
"""

import time

from repro.core import codec
from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var, this
from repro.obs import NULL_OBS, Instrumentation
from repro.protocols.arq import ARQ_PACKET
from repro.serve.manager import SessionManager
from repro.serve.wheel import TimerWheel

MAX_OVERHEAD = 1.10
TRIALS = 9
TRANSITIONS = 1500
DECODES = 3000
SERVE_PEERS = 64
SERVE_FRAMES = 3000

PKT = PacketSpec(
    "OverheadPkt",
    fields=[
        UInt("seq", bits=8),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8),
        Bytes("payload", length=this.length),
    ],
)


def _cycle_spec():
    spec = MachineSpec("overhead")
    seq = Param("seq", bits=8)
    ready = spec.state("Ready", params=[seq], initial=True)
    wait = spec.state("Wait", params=[seq])
    n = Var("seq")
    spec.transition("SEND", ready(n), wait(n), requires="bytes")
    spec.transition("FAIL", wait(n), ready(n))
    return spec.seal()


SPEC = _cycle_spec()
WIRE = PKT.encode(PKT.make(seq=3, length=4, payload=b"abcd"))


def _time_transitions(obs) -> float:
    machine = Machine(SPEC, obs=obs)
    exec_trans = machine.exec_trans
    start = time.perf_counter()
    for _ in range(TRANSITIONS):
        exec_trans("SEND", b"x")
        exec_trans("FAIL")
    return time.perf_counter() - start


def _time_decodes(obs) -> float:
    start = time.perf_counter()
    for _ in range(DECODES):
        codec.decode_packet(PKT, WIRE, obs=obs)
    return time.perf_counter() - start


_ARQ_WIRE = ARQ_PACKET.encode(ARQ_PACKET.make(seq=0, length=4, payload=b"ping"))


def _time_serve_datapath(obs) -> float:
    """The serve demux hot path: frame_from + inline drain, at density.

    Accepts run untimed (they include app construction); the timed
    region is the steady-state per-frame path the slab rewrite made
    allocation-free — one dict lookup, slab indexing, drain, app
    dispatch, ack out.
    """
    wheel = TimerWheel(tick=0.01, now=0.0)
    manager = SessionManager(
        "arq",
        wheel=wheel,
        clock=time.perf_counter,
        max_sessions=SERVE_PEERS * 2,
        idle_timeout=3600.0,
        obs=obs,
    )
    sink = []
    send = sink.append
    peers = [("overhead-peer", index) for index in range(SERVE_PEERS)]
    for peer in peers:
        manager.frame_from(peer, _ARQ_WIRE, send)
    frame_from = manager.frame_from
    start = time.perf_counter()
    for index in range(SERVE_FRAMES):
        frame_from(peers[index % SERVE_PEERS], _ARQ_WIRE, send)
    return time.perf_counter() - start


def _best_ratio(measure) -> float:
    disabled = Instrumentation(enabled=False)
    assert disabled.enabled is False and NULL_OBS.enabled is False
    measure(NULL_OBS)  # warm caches before the first timed trial
    measure(disabled)
    baseline_samples, disabled_samples = [], []
    for _ in range(TRIALS):
        baseline_samples.append(measure(NULL_OBS))
        disabled_samples.append(measure(disabled))
    return min(disabled_samples) / min(baseline_samples)


def test_exec_trans_disabled_overhead_within_bound():
    ratio = _best_ratio(_time_transitions)
    assert ratio <= MAX_OVERHEAD, (
        f"instrumented-but-disabled exec_trans is {ratio:.3f}x the no-op "
        f"baseline (bound {MAX_OVERHEAD}x)"
    )


def test_decode_packet_disabled_overhead_within_bound():
    ratio = _best_ratio(_time_decodes)
    assert ratio <= MAX_OVERHEAD, (
        f"instrumented-but-disabled decode_packet is {ratio:.3f}x the no-op "
        f"baseline (bound {MAX_OVERHEAD}x)"
    )


def test_serve_datapath_disabled_overhead_within_bound():
    ratio = _best_ratio(_time_serve_datapath)
    assert ratio <= MAX_OVERHEAD, (
        f"instrumented-but-disabled serve datapath is {ratio:.3f}x the "
        f"no-op baseline (bound {MAX_OVERHEAD}x)"
    )


def test_disabled_export_plane_stays_within_bound(monkeypatch):
    """The live-export plane must cost nothing when not asked for.

    With ``REPRO_OBS_EXPORT`` unset (or an off token) no exporter is even
    constructed — so the hot paths run the exact disabled-instrumentation
    code measured above, and the same 1.10x gate must hold with the
    environment explicitly in the disabled state.
    """
    from repro.obs.live.expose import Exporter
    from repro.obs.live.flightrec import active_recorder, reset_env_cache

    monkeypatch.delenv("REPRO_OBS_EXPORT", raising=False)
    monkeypatch.delenv("REPRO_OBS_FLIGHTREC", raising=False)
    assert Exporter.from_env() is None
    assert Exporter.from_env({"REPRO_OBS_EXPORT": "off"}) is None
    reset_env_cache()
    assert active_recorder() is None

    ratio = _best_ratio(_time_decodes)
    assert ratio <= MAX_OVERHEAD, (
        f"decode_packet with the export plane disabled is {ratio:.3f}x the "
        f"no-op baseline (bound {MAX_OVERHEAD}x)"
    )
    reset_env_cache()
