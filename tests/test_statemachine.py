"""State-machine DSL declarations: states, patterns, transitions."""

import pytest

from repro.core.statemachine import (
    MachineSpec,
    MachineSpecError,
    Param,
    StateInstance,
)
from repro.core.symbolic import UnificationError, Var


def minimal_machine():
    spec = MachineSpec("m")
    seq = Param("seq", bits=8)
    ready = spec.state("Ready", params=[seq], initial=True)
    done = spec.state("Done", params=[seq], final=True)
    n = Var("seq")
    spec.transition("GO", ready(n), done(n))
    return spec, ready, done


class TestParam:
    def test_wrapping_domain(self):
        param = Param("seq", bits=8)
        assert param.normalize(256) == 0
        assert param.normalize(257) == 1
        assert param.normalize(-1) == 255

    def test_unbounded_rejects_negative(self):
        with pytest.raises(MachineSpecError, match="negative"):
            Param("n").normalize(-1)

    def test_invalid_names_rejected(self):
        with pytest.raises(MachineSpecError):
            Param("not a name")
        with pytest.raises(MachineSpecError):
            Param("w", bits=0)


class TestStateDeclaration:
    def test_duplicate_state_rejected(self):
        spec = MachineSpec("m")
        spec.state("S")
        with pytest.raises(MachineSpecError, match="duplicate state"):
            spec.state("S")

    def test_duplicate_param_rejected(self):
        spec = MachineSpec("m")
        with pytest.raises(MachineSpecError, match="duplicate parameter"):
            spec.state("S", params=["a", "a"])

    def test_arity_enforced_on_patterns(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        with pytest.raises(MachineSpecError, match="parameter"):
            s(Var("x"), Var("y"))

    def test_arity_enforced_on_instances(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a", "b"])
        with pytest.raises(MachineSpecError):
            s.instance(1)

    def test_instance_normalizes_params(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=[Param("seq", bits=4)])
        assert s.instance(17).values == (1,)

    def test_string_params_coerced(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        assert s.params[0].name == "a"
        assert s.params[0].bits is None


class TestPatternMatching:
    def test_variable_pattern_binds(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        bindings = s(Var("a")).match(s.instance(5))
        assert bindings == {"a": 5}

    def test_constant_pattern_filters(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        pattern = s(0)
        assert pattern.match(s.instance(0)) == {}
        with pytest.raises(UnificationError):
            pattern.match(s.instance(1))

    def test_wrong_state_rejected(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        t = spec.state("T", params=["a"])
        with pytest.raises(UnificationError, match="does not match"):
            s(Var("a")).match(t.instance(1))

    def test_nonlinear_pattern_consistency(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a", "b"])
        pattern = s(Var("x"), Var("x"))
        assert pattern.match(s.instance(3, 3)) == {"x": 3}
        with pytest.raises(UnificationError):
            pattern.match(s.instance(3, 4))

    def test_instantiate_evaluates_and_wraps(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=[Param("seq", bits=8)])
        target = s(Var("n") + 1).instantiate({"n": 255})
        assert target == s.instance(0)


class TestTransitionDeclaration:
    def test_duplicate_transition_rejected(self):
        spec, ready, done = minimal_machine()
        with pytest.raises(MachineSpecError, match="duplicate transition"):
            spec.transition("GO", ready(Var("seq")), done(Var("seq")))

    def test_invalid_input_name_rejected(self):
        spec, ready, done = minimal_machine()
        with pytest.raises(MachineSpecError, match="identifier"):
            spec.transition(
                "X", ready(Var("seq")), done(Var("seq")), inputs=("1bad",)
            )

    def test_transitions_from_query(self):
        spec, ready, done = minimal_machine()
        assert [t.name for t in spec.transitions_from("Ready")] == ["GO"]
        assert spec.transitions_from("Done") == []

    def test_transition_named_lookup(self):
        spec, _, _ = minimal_machine()
        assert spec.transition_named("GO").name == "GO"
        with pytest.raises(KeyError):
            spec.transition_named("NOPE")


class TestSealing:
    def test_seal_freezes_spec(self):
        spec, ready, done = minimal_machine()
        spec.seal()
        assert spec.sealed
        with pytest.raises(MachineSpecError, match="sealed"):
            spec.state("New")
        with pytest.raises(MachineSpecError, match="sealed"):
            spec.transition("T2", ready(Var("seq")), done(Var("seq")))

    def test_seal_reports_all_errors_at_once(self):
        spec = MachineSpec("broken")
        a = spec.state("A", params=["x"])  # no initial state
        b = spec.state("B", params=["x"], final=True)
        spec.transition("T", a(Var("x")), b(Var("y")))  # unbound target var
        with pytest.raises(MachineSpecError) as excinfo:
            spec.seal()
        message = str(excinfo.value)
        assert "no initial state" in message
        assert "inputs bind" in message


class TestStateInstance:
    def test_bindings_dict(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a", "b"])
        instance = s.instance(1, 2)
        assert instance.bindings() == {"a": 1, "b": 2}

    def test_equality_and_hash(self):
        spec = MachineSpec("m")
        s = spec.state("S", params=["a"])
        assert s.instance(1) == s.instance(1)
        assert hash(s.instance(1)) == hash(s.instance(1))
        assert s.instance(1) != s.instance(2)

    def test_is_final_reflects_state(self):
        spec = MachineSpec("m")
        final_state = spec.state("F", final=True)
        assert final_state.instance().is_final
