"""The ASCII header renderer — including the Figure 1 reproduction."""

import re

import pytest

from repro.core.ascii_art import RenderError, diagram_rows, render_header_diagram
from repro.core.fields import Bytes, UInt
from repro.core.packet import PacketSpec
from repro.protocols.headers import IPV4_HEADER


def normalized_rows(diagram: str):
    """Field rows with intra-cell whitespace collapsed, for layout tests."""
    rows = []
    for line in diagram.splitlines():
        if line.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            rows.append(cells)
    return rows


class TestFigure1:
    """The paper's Figure 1: the RFC 791 IPv4 header picture."""

    def test_bit_ruler_matches_rfc791(self):
        diagram = render_header_diagram(IPV4_HEADER)
        lines = diagram.splitlines()
        assert lines[0] == (
            " 0                   1                   2                   3"
        )
        assert lines[1] == (
            " 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1"
        )

    def test_separator_rule_is_rfc_style(self):
        diagram = render_header_diagram(IPV4_HEADER)
        rule = "+" + "-+" * 32
        assert diagram.splitlines()[2] == rule

    def test_row_labels_match_figure_1(self):
        """Same fields, same rows, same order as the paper's figure."""
        rows = normalized_rows(render_header_diagram(IPV4_HEADER))
        assert rows[0] == ["Version", "IHL", "Type of Service", "Total Length"]
        assert rows[1] == ["Identification", "Flags", "Fragment Offset"]
        assert rows[2] == ["Time to Live", "Protocol", "Header Checksum"]
        assert rows[3] == ["Source Address"]
        assert rows[4] == ["Destination Address"]
        assert rows[5] == ["Options (variable)"]

    def test_cell_widths_encode_bit_widths(self):
        """A field of b bits occupies exactly 2*b-1 characters."""
        diagram = render_header_diagram(IPV4_HEADER)
        first_field_row = diagram.splitlines()[3]
        cells = first_field_row.strip("|").split("|")
        assert [len(c) for c in cells] == [7, 7, 15, 31]  # 4,4,8,16 bits

    def test_layout_offsets_match_rfc791(self):
        rows = diagram_rows(IPV4_HEADER)
        offsets = {name: (start, width) for name, start, width in rows}
        assert offsets["version"] == (0, 4)
        assert offsets["ihl"] == (4, 4)
        assert offsets["tos"] == (8, 8)
        assert offsets["total_length"] == (16, 16)
        assert offsets["identification"] == (32, 16)
        assert offsets["flags"] == (48, 3)
        assert offsets["fragment_offset"] == (51, 13)
        assert offsets["ttl"] == (64, 8)
        assert offsets["protocol"] == (72, 8)
        assert offsets["header_checksum"] == (80, 16)
        assert offsets["source"] == (96, 32)
        assert offsets["destination"] == (128, 32)
        assert offsets["options"] == (160, -1)


class TestGeneralRendering:
    def test_title_appended(self):
        spec = PacketSpec("T", fields=[UInt("a", bits=32)])
        diagram = render_header_diagram(spec, title="Figure 1. Test")
        assert diagram.splitlines()[-1] == "Figure 1. Test"

    def test_narrow_row_bits(self):
        spec = PacketSpec("N", fields=[UInt("a", bits=8), Bytes("rest")])
        diagram = render_header_diagram(spec, row_bits=8)
        assert "+-+-+-+-+-+-+-+-+" in diagram

    def test_long_labels_truncated_not_overflowing(self):
        spec = PacketSpec(
            "L",
            fields=[
                UInt("x", bits=4, doc="An Extremely Long Field Label Overflowing"),
                UInt("y", bits=28),
            ],
        )
        diagram = render_header_diagram(spec)
        for line in diagram.splitlines():
            if line.startswith("|"):
                assert len(line) == 65  # 2*32 + 1

    def test_multi_row_field_renders_spanning_rows(self):
        spec = PacketSpec("Wide", fields=[Bytes("key", length=8)])
        rows = normalized_rows(render_header_diagram(spec))
        assert rows[0] == ["key"]
        assert rows[1] == [""]

    def test_misaligned_wide_field_rejected(self):
        spec = PacketSpec(
            "Bad", fields=[UInt("a", bits=16), UInt("b", bits=24), UInt("c", bits=24)]
        )
        with pytest.raises(RenderError, match="does not fit"):
            render_header_diagram(spec)

    def test_partial_final_row_is_closed(self):
        spec = PacketSpec("P", fields=[UInt("a", bits=8), UInt("b", bits=8)])
        diagram = render_header_diagram(spec)
        assert diagram.splitlines()[-1] == "+" + "-+" * 16
