"""Definition-time checking of packet specs — the DSL's 'type errors'."""

import pytest

from repro.core.constraints import Constraint
from repro.core.fields import Bytes, ChecksumField, Reserved, UInt, UIntList
from repro.core.packet import PacketSpec, SpecError
from repro.core.symbolic import this


def arq_spec():
    return PacketSpec(
        "Arq",
        fields=[
            UInt("seq", bits=8),
            ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
            UInt("length", bits=8),
            Bytes("payload", length=this.length),
        ],
    )


class TestStructuralValidation:
    def test_empty_field_list_rejected(self):
        with pytest.raises(SpecError, match="at least one field"):
            PacketSpec("Empty", fields=[])

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate field"):
            PacketSpec("Dup", fields=[UInt("a", bits=8), UInt("a", bits=8)])

    def test_forward_shape_reference_rejected(self):
        with pytest.raises(SpecError, match="look backwards"):
            PacketSpec(
                "Fwd",
                fields=[Bytes("payload", length=this.length), UInt("length", bits=8)],
            )

    def test_reference_to_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="look backwards"):
            PacketSpec(
                "Unknown",
                fields=[UInt("a", bits=8), Bytes("b", length=this.nothere)],
            )

    def test_non_integer_shape_reference_rejected(self):
        with pytest.raises(SpecError, match="non-integer"):
            PacketSpec(
                "BadRef",
                fields=[
                    Bytes("blob", length=2),
                    Bytes("more", length=this.blob),
                ],
            )

    def test_greedy_field_must_be_last(self):
        with pytest.raises(SpecError, match="greedy.*must be last"):
            PacketSpec(
                "Greedy",
                fields=[Bytes("rest"), UInt("after", bits=8)],
            )

    def test_checksum_over_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown field"):
            PacketSpec(
                "BadCover",
                fields=[
                    UInt("a", bits=8),
                    ChecksumField("chk", algorithm="xor8", over=("ghost",)),
                ],
            )

    def test_checksum_cannot_cover_itself_by_name(self):
        with pytest.raises(SpecError, match="cannot cover itself"):
            PacketSpec(
                "SelfCover",
                fields=[
                    UInt("a", bits=8),
                    ChecksumField("chk", algorithm="xor8", over=("a", "chk")),
                ],
            )

    def test_total_width_must_be_byte_aligned(self):
        with pytest.raises(SpecError, match="byte-aligned"):
            PacketSpec("Ragged", fields=[UInt("a", bits=4), UInt("b", bits=8)])

    def test_sub_byte_checksum_cover_rejected_statically(self):
        with pytest.raises(SpecError, match="whole number of bytes"):
            PacketSpec(
                "SubByteCover",
                fields=[
                    UInt("a", bits=4),
                    Reserved("pad", bits=4),
                    ChecksumField("chk", algorithm="xor8", over=("a",)),
                ],
            )

    def test_duplicate_constraint_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate constraint"):
            PacketSpec(
                "DupConstraint",
                fields=[UInt("a", bits=8)],
                constraints=[
                    Constraint("c1", lambda p: True),
                    Constraint("c1", lambda p: True),
                ],
            )

    def test_spec_name_must_be_identifier(self):
        with pytest.raises(SpecError, match="identifier"):
            PacketSpec("bad name", fields=[UInt("a", bits=8)])


class TestStructuralQueries:
    def test_field_names_in_order(self):
        assert arq_spec().field_names == ("seq", "chk", "length", "payload")

    def test_fixed_width_none_for_dependent_payload(self):
        assert arq_spec().fixed_bit_width() is None

    def test_fixed_width_sums_static_fields(self):
        spec = PacketSpec(
            "Fixed", fields=[UInt("a", bits=8), UInt("b", bits=16), Bytes("c", length=2)]
        )
        assert spec.fixed_bit_width() == 8 + 16 + 16

    def test_auto_constraints_generated(self):
        spec = PacketSpec(
            "Auto",
            fields=[
                UInt("version", bits=8, const=4),
                UInt("kind", bits=8, enum={0: "a", 1: "b"}),
                Reserved("pad", bits=8),
                ChecksumField("chk", algorithm="xor8", over=("version",)),
            ],
        )
        names = set(spec.constraint_names)
        assert "chk_valid" in names
        assert "version_is_4" in names
        assert "kind_in_enum" in names
        assert "pad_is_0" in names


class TestMake:
    def test_make_fills_const_and_reserved_and_checksum(self):
        spec = PacketSpec(
            "M",
            fields=[
                UInt("version", bits=8, const=4),
                Reserved("pad", bits=8),
                UInt("x", bits=8),
                ChecksumField("chk", algorithm="xor8", over=("version", "x")),
            ],
        )
        packet = spec.make(x=9)
        assert packet.version == 4
        assert packet.pad == 0
        assert packet.chk == 4 ^ 9

    def test_make_rejects_supplied_checksum(self):
        spec = arq_spec()
        with pytest.raises(Exception, match="computed, not supplied"):
            spec.make(seq=1, chk=0, length=0, payload=b"")

    def test_make_requires_all_values(self):
        with pytest.raises(Exception, match="no value supplied"):
            arq_spec().make(seq=1)

    def test_make_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown fields"):
            arq_spec().make(seq=1, length=0, payload=b"", bogus=1)

    def test_make_shape_checks_eagerly(self):
        with pytest.raises(Exception, match="expected 3 bytes"):
            arq_spec().make(seq=1, length=3, payload=b"toolong!")


class TestPacketValue:
    def test_attribute_and_item_access(self):
        packet = arq_spec().make(seq=1, length=2, payload=b"ab")
        assert packet.seq == 1
        assert packet["payload"] == b"ab"
        assert "seq" in packet
        assert list(packet) == ["seq", "chk", "length", "payload"]

    def test_immutability(self):
        packet = arq_spec().make(seq=1, length=0, payload=b"")
        with pytest.raises(AttributeError, match="immutable"):
            packet.seq = 2

    def test_replace_is_literal(self):
        packet = arq_spec().make(seq=1, length=3, payload=b"abc")
        assert packet.chk != 0  # 1 ^ 3 ^ 'a' ^ 'b' ^ 'c' is non-zero
        forged = packet.replace(chk=0)
        assert forged.chk == 0
        assert packet.chk != 0

    def test_replace_unknown_field_rejected(self):
        packet = arq_spec().make(seq=1, length=0, payload=b"")
        with pytest.raises(KeyError):
            packet.replace(ghost=1)

    def test_equality_and_hash(self):
        spec = arq_spec()
        a = spec.make(seq=1, length=2, payload=b"ab")
        b = spec.make(seq=1, length=2, payload=b"ab")
        assert a == b
        assert hash(a) == hash(b)
        assert a != b.replace(seq=2)

    def test_missing_attribute_raises(self):
        packet = arq_spec().make(seq=1, length=0, payload=b"")
        with pytest.raises(AttributeError, match="no field"):
            packet.nonexistent

    def test_integer_environment(self):
        packet = arq_spec().make(seq=3, length=2, payload=b"hi")
        env = packet.integer_environment()
        assert env["seq"] == 3 and env["length"] == 2
        assert "payload" not in env
