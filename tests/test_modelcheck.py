"""The explicit-state model checker: exploration, invariants, explosion."""

import pytest

from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var
from repro.modelcheck import (
    ExplorationBudgetExceeded,
    check_invariant,
    explore,
)
from repro.protocols.arq import build_sender_spec


def counter_machine(bits=4):
    spec = MachineSpec("counter")
    n_param = Param("n", bits=bits)
    count = spec.state("Count", params=[n_param], initial=True)
    done = spec.state("Done", params=[n_param], final=True)
    n = Var("n")
    spec.transition("INC", count(n), count(n + 1))
    spec.transition("STOP", count(n), done(n))
    return spec


class TestExploration:
    def test_counter_reaches_whole_domain(self):
        result = explore(counter_machine(bits=4))
        # 16 Count states + 16 Done states.
        assert result.states_visited == 32
        assert result.deadlock_free

    def test_exponential_growth_in_bits(self):
        sizes = [explore(counter_machine(bits=b)).states_visited for b in (2, 4, 6)]
        assert sizes == [8, 32, 128]  # 2 * 2**bits

    def test_arq_sender_space(self):
        result = explore(build_sender_spec(max_seq_bits=4))
        assert result.states_visited == 4 * 16  # four states x 16 sequences
        assert result.deadlock_free
        assert result.all_can_reach_final() == []

    def test_budget_exceeded_raises(self):
        with pytest.raises(ExplorationBudgetExceeded):
            explore(build_sender_spec(max_seq_bits=8), max_states=100)

    def test_abstraction_shrinks_space(self):
        full = explore(build_sender_spec(max_seq_bits=8))
        abstracted = explore(build_sender_spec(max_seq_bits=8), abstraction=4)
        assert abstracted.states_visited < full.states_visited

    def test_payload_guards_are_overapproximated(self):
        result = explore(build_sender_spec(max_seq_bits=2))
        # OK's guard inspects the payload; the model cannot evaluate it.
        assert "OK" in result.approximated_transitions

    def test_input_domains_enumerated(self):
        spec = MachineSpec("inp")
        base = Param("base", bits=4)
        active = spec.state("Active", params=[base], initial=True)
        done = spec.state("Done", params=[base], final=True)
        b, a = Var("base"), Var("ack")
        spec.transition("ACK", active(b), active(a), inputs=("ack",), guard=a > b)
        spec.transition("STOP", active(b), done(b))
        result = explore(spec, input_domains={"ACK": {"ack": range(16)}})
        assert result.states_visited == 32
        assert result.approximated_transitions == []

    def test_missing_input_domain_recorded(self):
        spec = MachineSpec("inp2")
        base = Param("base", bits=2)
        active = spec.state("Active", params=[base], initial=True)
        done = spec.state("Done", params=[base], final=True)
        b, a = Var("base"), Var("ack")
        spec.transition("ACK", active(b), active(a), inputs=("ack",))
        spec.transition("STOP", active(b), done(b))
        result = explore(spec)
        assert "ACK" in result.approximated_transitions

    def test_unbounded_param_hits_budget(self):
        """An unbounded self-advancing machine has an infinite reachable
        space; exploration surfaces that as a budget overflow — the state
        explosion made tangible."""
        spec = MachineSpec("unbounded")
        n_param = Param("n")  # no bits: infinite domain
        s = spec.state("S", params=[n_param], initial=True)
        f = spec.state("F", params=[n_param], final=True)
        spec.transition("INC", s(Var("n")), s(Var("n") + 1))
        spec.transition("STOP", s(Var("n")), f(Var("n")))
        with pytest.raises(ExplorationBudgetExceeded):
            explore(spec, max_states=1000)


class TestInvariants:
    def test_invariant_holds(self):
        result = explore(counter_machine(bits=3))
        violations = check_invariant(result, lambda s: s.values[0] < 8)
        assert violations == []

    def test_violation_reported_with_path(self):
        result = explore(counter_machine(bits=3))
        violations = check_invariant(result, lambda s: s.values[0] < 3)
        assert violations
        worst = violations[0]
        assert worst.path == ("INC",) * worst.state.values[0] or worst.path[-1] in (
            "INC",
            "STOP",
        )

    def test_path_to_reconstructs_witness(self):
        result = explore(counter_machine(bits=3))
        target = [
            s
            for s in result.reachable_states()
            if s.name == "Count" and s.values == (3,)
        ][0]
        assert result.path_to(target) == ("INC", "INC", "INC")


class TestSuccessorQueries:
    def test_successors_listed(self):
        result = explore(counter_machine(bits=2))
        initial = result.initial
        names = {name for name, _ in result.successors(initial)}
        assert names == {"INC", "STOP"}
