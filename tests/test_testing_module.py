"""The inline-testing module: generated test cases for specs and machines."""

import random

import pytest
from hypothesis import given, settings

from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, build_sender_spec
from repro.protocols.dns import DNS_HEADER
from repro.protocols.headers import ICMP_ECHO, IPV4_HEADER, TCP_HEADER, UDP_HEADER
from repro.testing import (
    GenerationError,
    machine_self_test,
    packets,
    random_packet,
    spec_self_test,
)


class TestRandomPacket:
    @pytest.mark.parametrize(
        "spec", [ARQ_PACKET, ACK_PACKET, IPV4_HEADER, TCP_HEADER, ICMP_ECHO, DNS_HEADER]
    )
    def test_generated_packets_verify(self, spec):
        rng = random.Random(7)
        for _ in range(20):
            packet = random_packet(spec, rng)
            verified = spec.verify(packet)  # must not raise
            assert verified.value == packet

    def test_dependent_shapes_resolved(self):
        rng = random.Random(1)
        for _ in range(20):
            packet = random_packet(IPV4_HEADER, rng)
            assert len(packet.options) == (packet.ihl - 5) * 4

    def test_reproducible_by_seed(self):
        a = random_packet(ARQ_PACKET, random.Random(5))
        b = random_packet(ARQ_PACKET, random.Random(5))
        assert a == b

    def test_unsatisfiable_spec_reports_clearly(self):
        from repro.core.constraints import Constraint
        from repro.core.fields import UInt
        from repro.core.packet import PacketSpec

        impossible = PacketSpec(
            "Impossible",
            fields=[UInt("x", bits=8)],
            constraints=[Constraint("never", lambda p: False)],
        )
        with pytest.raises(GenerationError, match="could not generate"):
            random_packet(impossible, random.Random(0), max_attempts=10)

    def test_udp_generated_lengths_consistent(self):
        rng = random.Random(3)
        for _ in range(20):
            packet = random_packet(UDP_HEADER, rng)
            assert packet.length == len(packet.payload) + 8


class TestSpecSelfTest:
    @pytest.mark.parametrize(
        "spec", [ARQ_PACKET, ACK_PACKET, IPV4_HEADER, UDP_HEADER, DNS_HEADER]
    )
    def test_shipped_specs_pass(self, spec):
        report = spec_self_test(spec, cases=25, seed=3)
        report.raise_on_failure()
        assert report.ok

    def test_detects_broken_codec_symmetry(self):
        """A spec whose encode and decode disagree must fail self-test."""
        from repro.core.fields import UInt
        from repro.core.packet import PacketSpec

        class LyingField(UInt):
            def encode(self, writer, value, env):
                super().encode(writer, (value + 1) % 256, env)  # seeded bug

        broken = PacketSpec("Broken", fields=[LyingField("x", bits=8)])
        report = spec_self_test(broken, cases=10, include_codegen=False)
        assert not report.ok
        with pytest.raises(AssertionError, match="round-trip"):
            report.raise_on_failure()


class TestMachineSelfTest:
    @staticmethod
    def provide(transition, machine):
        if transition.requires == "bytes":
            return b"payload"
        if transition.requires is ACK_PACKET:
            return ACK_PACKET.verify(
                ACK_PACKET.make(seq=machine.current.values[0])
            )
        return None

    def test_arq_sender_walks_clean(self):
        report = machine_self_test(
            build_sender_spec(), self.provide, walks=15, seed=2
        )
        report.raise_on_failure()

    def test_random_initial_states(self):
        spec = build_sender_spec()

        def initial(rng):
            return spec.states["Ready"].instance(rng.randrange(256))

        report = machine_self_test(
            spec, self.provide, walks=10, seed=4, initial_factory=initial
        )
        assert report.ok


class TestHypothesisIntegration:
    @settings(max_examples=20, deadline=None)
    @given(packets(ARQ_PACKET))
    def test_strategy_yields_verified_packets(self, packet):
        wire = ARQ_PACKET.encode(packet)
        assert ARQ_PACKET.parse(wire).value == packet
