"""The code generator: differential equivalence with the interpreted codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.compile import CodegenError, compile_spec, generate_codec_source
from repro.core.constraints import Constraint
from repro.core.fields import Bytes, ChecksumField, Flag, Reserved, UInt, UIntList
from repro.core.packet import PacketSpec
from repro.core.symbolic import this
from repro.protocols.arq import ARQ_PACKET
from repro.protocols.headers import IPV4_HEADER, UDP_HEADER

SPECS = {
    "arq": ARQ_PACKET,
    "udp": UDP_HEADER,
    "ipv4": IPV4_HEADER,
}


def sample_packets():
    yield "arq", ARQ_PACKET.make(seq=7, length=5, payload=b"hello")
    yield "arq", ARQ_PACKET.make(seq=0, length=0, payload=b"")
    yield "udp", UDP_HEADER.make(
        source_port=53, destination_port=1234, length=8 + 4, payload=b"ping"
    )
    yield "ipv4", IPV4_HEADER.make(
        ihl=5, tos=0, total_length=20, identification=1, flags=0,
        fragment_offset=0, ttl=64, protocol=17,
        source=0xC0A80001, destination=0xC0A800C7, options=b"",
    )


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("name,packet", list(sample_packets()))
    def test_build_matches_interpreted_encode(self, name, packet):
        compiled = compile_spec(SPECS[name])
        assert compiled.build(packet.values) == SPECS[name].encode(packet)

    @pytest.mark.parametrize("name,packet", list(sample_packets()))
    def test_parse_matches_interpreted_decode(self, name, packet):
        spec = SPECS[name]
        compiled = compile_spec(spec)
        wire = spec.encode(packet)
        assert compiled.parse(wire) == spec.decode(wire).values

    @pytest.mark.parametrize("name,packet", list(sample_packets()))
    def test_finalize_matches_make_checksums(self, name, packet):
        spec = SPECS[name]
        compiled = compile_spec(spec)
        zeroed = dict(packet.values)
        for field in spec.fields:
            if isinstance(field, ChecksumField):
                zeroed[field.name] = 0
        assert compiled.finalize(zeroed) == packet.values

    @given(seq=st.integers(0, 255), payload=st.binary(max_size=200))
    def test_arq_differential_property(self, seq, payload):
        compiled = compile_spec(ARQ_PACKET)
        packet = ARQ_PACKET.make(seq=seq, length=len(payload), payload=payload)
        wire = ARQ_PACKET.encode(packet)
        assert compiled.build(packet.values) == wire
        assert compiled.parse(wire) == packet.values
        assert compiled.validate(packet.values) == []


class TestGeneratedValidation:
    def test_checksum_violation_detected(self):
        compiled = compile_spec(ARQ_PACKET)
        packet = ARQ_PACKET.make(seq=1, length=3, payload=b"abc")
        bad = dict(packet.values, chk=(packet.chk + 1) % 256)
        assert "chk_valid" in compiled.validate(bad)

    def test_const_violation_detected(self):
        compiled = compile_spec(IPV4_HEADER)
        packet = next(p for n, p in sample_packets() if n == "ipv4")
        bad = dict(packet.values, version=6)
        assert "version_is_4" in compiled.validate(bad)

    def test_symbolic_constraint_exported(self):
        compiled = compile_spec(IPV4_HEADER)
        packet = next(p for n, p in sample_packets() if n == "ipv4")
        bad = dict(packet.values, ihl=5, total_length=10)
        assert "total_length_covers_header" in compiled.validate(bad)

    def test_enum_violation_detected(self):
        spec = PacketSpec(
            "E",
            fields=[
                UInt("kind", bits=8, enum={0: "a", 1: "b"}),
                Reserved("pad", bits=8),
            ],
        )
        compiled = compile_spec(spec)
        assert "kind_in_enum" in compiled.validate({"kind": 7, "pad": 0})


class TestGeneratedErrorPaths:
    def test_parse_rejects_truncation(self):
        compiled = compile_spec(ARQ_PACKET)
        with pytest.raises(ValueError):
            compiled.parse(b"\x01")

    def test_parse_rejects_trailing_data(self):
        spec = PacketSpec("Trail", fields=[UInt("a", bits=8)])
        compiled = compile_spec(spec)
        with pytest.raises(ValueError, match="trailing"):
            compiled.parse(b"\x01\x02")

    def test_build_rejects_oversized_values(self):
        spec = PacketSpec("Over", fields=[UInt("a", bits=8)])
        compiled = compile_spec(spec)
        with pytest.raises(ValueError, match="does not fit"):
            compiled.build({"a": 300})

    def test_build_rejects_length_mismatch(self):
        compiled = compile_spec(ARQ_PACKET)
        with pytest.raises(ValueError, match="length"):
            compiled.build({"seq": 1, "chk": 0, "length": 5, "payload": b"ab"})


class TestGeneratorLimits:
    def test_source_is_standalone(self):
        source = generate_codec_source(ARQ_PACKET)
        assert "import repro" not in source
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        assert callable(namespace["parse"])

    def test_source_mentions_generation(self):
        source = generate_codec_source(ARQ_PACKET)
        assert "Generated codec" in source
        assert "do not edit" in source

    def test_bit_fields_supported(self):
        spec = PacketSpec(
            "Bits",
            fields=[
                UInt("v", bits=4),
                UInt("h", bits=4),
                Flag("f"),
                Reserved("pad", bits=7),
                UIntList("xs", element_bits=8, count=this.v),
            ],
        )
        compiled = compile_spec(spec)
        packet = spec.make(v=2, h=5, f=True, xs=[9, 8])
        wire = spec.encode(packet)
        assert compiled.build(packet.values) == wire
        assert compiled.parse(wire) == packet.values

    def test_unaligned_checksum_cover_refused(self):
        # Legal spec (cover is a whole byte) but the covered field starts
        # mid-byte; the interpreter handles it, the generator refuses.
        spec = PacketSpec(
            "Unaligned",
            fields=[
                UInt("a", bits=4),
                UInt("b", bits=8),
                Reserved("pad", bits=4),
                ChecksumField("chk", algorithm="crc16-ccitt", over=("b",)),
            ],
        )
        with pytest.raises(CodegenError, match="byte-aligned"):
            generate_codec_source(spec)
