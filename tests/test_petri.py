"""Petri nets: semantics, reachability, and the ARQ token-flow model."""

import pytest

from repro.modelcheck.petri import (
    PetriError,
    PetriNet,
    Transition,
    UnboundedNetError,
    arq_petri_net,
    explore_net,
)


def producer_consumer_net():
    net = PetriNet(
        ["idle", "item", "consumed"],
        [
            Transition("produce", {"idle": 1}, {"item": 1}),
            Transition("consume", {"item": 1}, {"consumed": 1, "idle": 1}),
        ],
    )
    return net, net.marking({"idle": 1})


class TestNetSemantics:
    def test_enabled_and_fire(self):
        net, initial = producer_consumer_net()
        enabled = net.enabled(initial)
        assert [t.name for t in enabled] == ["produce"]
        after = net.fire(initial, enabled[0])
        assert net.render(after) == {"item": 1}

    def test_firing_disabled_transition_rejected(self):
        net, initial = producer_consumer_net()
        consume = net.transitions[1]
        with pytest.raises(PetriError, match="not enabled"):
            net.fire(initial, consume)

    def test_arc_weights(self):
        net = PetriNet(
            ["pool", "pair"],
            [Transition("take_two", {"pool": 2}, {"pair": 1})],
        )
        two = net.marking({"pool": 2})
        assert net.enabled(two)
        one = net.marking({"pool": 1})
        assert not net.enabled(one)

    def test_inhibitor_arcs_block_on_tokens(self):
        net = PetriNet(
            ["trigger", "blocker", "out"],
            [
                Transition(
                    "fire",
                    {"trigger": 1},
                    {"out": 1},
                    inhibit=frozenset({"blocker"}),
                )
            ],
        )
        assert net.enabled(net.marking({"trigger": 1}))
        assert not net.enabled(net.marking({"trigger": 1, "blocker": 1}))

    def test_structural_validation(self):
        with pytest.raises(PetriError, match="unknown"):
            PetriNet(["a"], [Transition("t", {"ghost": 1}, {})])
        with pytest.raises(PetriError, match="positive"):
            PetriNet(["a"], [Transition("t", {"a": 0}, {})])
        with pytest.raises(PetriError, match="duplicate"):
            PetriNet(
                ["a"],
                [Transition("t", {"a": 1}, {}), Transition("t", {"a": 1}, {})],
            )
        with pytest.raises(PetriError, match="unique"):
            PetriNet(["a", "a"], [])


class TestReachability:
    def test_token_growth_detected_as_unbounded(self):
        net = PetriNet(
            ["spring", "pool"],
            [Transition("flow", {"spring": 1}, {"spring": 1, "pool": 1})],
        )
        with pytest.raises(UnboundedNetError, match="pool"):
            explore_net(net, net.marking({"spring": 1}), token_bound=16)

    def test_bounded_cycle(self):
        net, initial = producer_consumer_net()
        # 'consumed' grows forever; bound the exploration on it instead.
        with pytest.raises(UnboundedNetError):
            explore_net(net, initial, token_bound=8)

    def test_deadlock_detection(self):
        net = PetriNet(
            ["a", "b"],
            [Transition("move", {"a": 1}, {"b": 1})],
        )
        result = explore_net(net, net.marking({"a": 1}))
        assert result.markings == 2
        assert len(result.deadlocks) == 1
        assert net.render(result.deadlocks[0]) == {"b": 1}


class TestArqNet:
    def test_deadlock_free(self):
        net, initial = arq_petri_net()
        result = explore_net(net, initial)
        assert result.deadlocks == []
        assert result.markings > 5

    def test_two_bounded_but_not_safe(self):
        """Premature timeouts put two copies in flight — the net-level
        reason stop-and-wait needs sequence numbers at all."""
        net, initial = arq_petri_net()
        result = explore_net(net, initial)
        assert result.is_k_bounded(2)
        assert not result.is_safe
        assert result.max_tokens_per_place["data_in_flight"] == 2

    def test_sender_receiver_phases_are_safe(self):
        """The control places (unlike the channel places) are 1-bounded."""
        net, initial = arq_petri_net()
        result = explore_net(net, initial)
        for place in (
            "sender_ready",
            "sender_waiting",
            "receiver_idle",
            "receiver_acking",
        ):
            assert result.max_tokens_per_place[place] == 1

    def test_idle_marking_recoverable_from_everywhere(self):
        """From every reachable marking the system can drain back to the
        sender-ready / receiver-idle configuration."""
        net, initial = arq_petri_net()
        result = explore_net(net, initial)
        idle_like = {
            m
            for m in result.reachable_markings()
            if net.render(m).get("sender_ready") == 1
            and net.render(m).get("receiver_idle") == 1
        }
        # Reverse reachability from idle-like markings.
        reverse = {}
        for marking in result.reachable_markings():
            for _, successor in result.successors(marking):
                reverse.setdefault(successor, []).append(marking)
        can = set(idle_like)
        frontier = list(idle_like)
        while frontier:
            current = frontier.pop()
            for predecessor in reverse.get(current, []):
                if predecessor not in can:
                    can.add(predecessor)
                    frontier.append(predecessor)
        assert set(result.reachable_markings()) <= can
