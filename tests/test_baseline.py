"""The hand-coded baseline: wire compatibility, bugs, fault behaviour."""

import pytest

from repro.baseline.sockets_arq import (
    ERR_BAD_CHECKSUM,
    ERR_BAD_LENGTH,
    ERR_OK,
    ERR_TOO_SHORT,
    KNOWN_BUGS,
    pack_ack,
    pack_data,
    run_baseline_transfer,
    unpack_ack,
    unpack_data,
)
from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET

MESSAGES = [f"msg-{i:03d}".encode() for i in range(30)]
FAULTY = ChannelConfig(loss_rate=0.15, corruption_rate=0.12, duplication_rate=0.08)


class TestManualPacking:
    def test_pack_unpack_round_trip(self):
        frame = pack_data(7, b"hello")
        err, seq, payload = unpack_data(frame)
        assert (err, seq, payload) == (ERR_OK, 7, b"hello")

    def test_corruption_detected(self):
        frame = bytearray(pack_data(7, b"hello"))
        frame[4] ^= 0xFF
        err, _, _ = unpack_data(bytes(frame))
        assert err == ERR_BAD_CHECKSUM

    def test_truncation_detected(self):
        assert unpack_data(b"\x01")[0] == ERR_TOO_SHORT
        frame = pack_data(7, b"hello")
        assert unpack_data(frame[:-1])[0] == ERR_BAD_LENGTH

    def test_ack_round_trip(self):
        err, seq = unpack_ack(pack_ack(9))
        assert (err, seq) == (ERR_OK, 9)

    def test_wire_compatible_with_dsl_specs(self):
        """The baseline and the DSL speak the same bytes — the comparison
        is apples to apples."""
        dsl = ARQ_PACKET.encode(ARQ_PACKET.make(seq=7, length=5, payload=b"hello"))
        assert pack_data(7, b"hello") == dsl
        dsl_ack = ACK_PACKET.encode(ACK_PACKET.make(seq=9))
        assert pack_ack(9) == dsl_ack


class TestCleanBaseline:
    def test_clean_channel_succeeds(self):
        report = run_baseline_transfer(MESSAGES)
        assert report.success
        assert report.violations == []

    def test_faulty_channel_succeeds_when_bug_free(self):
        report = run_baseline_transfer(MESSAGES, FAULTY, seed=4)
        assert report.success
        assert report.violations == []


class TestSeededBugs:
    def test_unknown_bug_rejected(self):
        from repro.netsim import Node, Simulator
        from repro.baseline.sockets_arq import SocketsStyleSender

        sim = Simulator()
        with pytest.raises(ValueError, match="unknown bug"):
            SocketsStyleSender(sim, Node(sim, "s"), "r", [], bug="typo")

    def test_skip_checksum_lets_corruption_through(self):
        report = run_baseline_transfer(
            MESSAGES, FAULTY, seed=4, receiver_bug="skip_checksum"
        )
        assert report.violations  # corrupted payloads reached the app

    def test_bad_dup_check_delivers_duplicates(self):
        report = run_baseline_transfer(
            MESSAGES, FAULTY, seed=4, receiver_bug="bad_dup_check"
        )
        assert len(report.delivered) > len(MESSAGES) or report.violations

    def test_accept_any_ack_loses_messages(self):
        report = run_baseline_transfer(
            MESSAGES, FAULTY, seed=4, sender_bug="accept_any_ack"
        )
        assert not report.success

    def test_forget_timer_hangs(self):
        report = run_baseline_transfer(
            MESSAGES,
            ChannelConfig(loss_rate=0.4),
            seed=4,
            sender_bug="forget_timer",
            max_events=200_000,
        )
        assert not report.success  # the transfer silently stalls

    def test_bugs_are_silent_on_a_clean_channel(self):
        """The insidious part: every bug passes a clean-network test."""
        for bug in KNOWN_BUGS:
            kwargs = (
                {"sender_bug": bug}
                if bug in ("accept_any_ack", "forget_timer")
                else {"receiver_bug": bug}
            )
            report = run_baseline_transfer(MESSAGES, ChannelConfig(), **kwargs)
            assert report.success, f"bug {bug} should hide on a clean channel"
            assert report.violations == []
