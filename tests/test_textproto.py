"""The chat protocol: ABNF syntax composed with DSL framing and behaviour."""

import pytest

from repro.core.packet import VerificationError
from repro.protocols.textproto import (
    CHAT_FRAME,
    ChatSession,
    build_session_spec,
    is_wellformed_command,
    make_frame,
)


class TestSyntaxConstraint:
    def test_wellformed_commands(self):
        for line in (
            b"JOIN lobby\r\n",
            b"LEAVE room-1\r\n",
            b"MSG lobby hello there\r\n",
            b"PING\r\n",
        ):
            assert is_wellformed_command(line)

    def test_malformed_commands(self):
        for line in (
            b"SHOUT lobby\r\n",     # unknown verb
            b"JOIN\r\n",            # missing room
            b"JOIN lobby",          # missing CRLF
            b"MSG lobby\r\n",       # missing text
            b"JOIN a b c\r\n",      # room with spaces
            b"",
        ):
            assert not is_wellformed_command(line)

    def test_frame_verification_includes_abnf(self):
        line = b"SHOUT loudly\r\n"
        packet = CHAT_FRAME.make(length=len(line), command=line)
        with pytest.raises(VerificationError) as excinfo:
            CHAT_FRAME.verify(packet)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert "command_wellformed" in names

    def test_crc_and_abnf_both_enforced_on_parse(self):
        wire = bytearray(make_frame("JOIN lobby"))
        wire[-3] ^= 0xFF  # corrupt a payload byte
        assert CHAT_FRAME.try_parse(bytes(wire)) is None


class TestSessionBehaviour:
    def test_happy_flow(self):
        session = ChatSession()
        assert session.submit(make_frame("JOIN lobby"))
        assert session.submit(make_frame("MSG lobby hello"))
        assert session.submit(make_frame("PING"))
        assert session.submit(make_frame("LEAVE lobby"))
        assert [verb for verb, _, _ in session.log] == [
            "JOIN", "MSG", "PING", "LEAVE",
        ]

    def test_cannot_speak_before_joining(self):
        session = ChatSession()
        assert not session.submit(make_frame("MSG lobby hello"))
        assert session.machine.in_state("Outside")

    def test_cannot_speak_into_other_room(self):
        session = ChatSession()
        session.submit(make_frame("JOIN lobby"))
        assert not session.submit(make_frame("MSG other-room psst"))
        assert session.room == "lobby"

    def test_cannot_join_twice(self):
        session = ChatSession()
        session.submit(make_frame("JOIN lobby"))
        assert not session.submit(make_frame("JOIN annex"))
        assert session.room == "lobby"

    def test_garbage_rejected_totally(self):
        session = ChatSession()
        assert not session.submit(b"\x00\x01garbage")
        assert not session.submit(b"")
        assert session.log == []

    def test_session_spec_is_checked(self):
        from repro.core.checker import check_machine

        assert check_machine(build_session_spec()).ok

    def test_ping_works_in_both_phases(self):
        session = ChatSession()
        assert session.submit(make_frame("PING"))
        session.submit(make_frame("JOIN lobby"))
        assert session.submit(make_frame("PING"))
