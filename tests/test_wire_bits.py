"""Unit and property tests for the bit-level reader/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.wire.bits import (
    BitReader,
    BitWriter,
    ByteOrder,
    MisalignedReadError,
    TruncatedDataError,
)


class TestBitWriter:
    def test_single_byte_from_two_nibbles(self):
        writer = BitWriter()
        writer.write_uint(4, 4)
        writer.write_uint(5, 4)
        assert writer.getvalue() == b"\x45"

    def test_msb_first_within_byte(self):
        writer = BitWriter()
        writer.write_bool(True)
        writer.write_uint(0, 7)
        assert writer.getvalue() == b"\x80"

    def test_multibyte_big_endian(self):
        writer = BitWriter()
        writer.write_uint(0xABCD, 16)
        assert writer.getvalue() == b"\xab\xcd"

    def test_little_endian_whole_bytes(self):
        writer = BitWriter()
        writer.write_uint(0xABCD, 16, ByteOrder.LITTLE)
        assert writer.getvalue() == b"\xcd\xab"

    def test_little_endian_rejects_sub_byte_width(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="whole bytes"):
            writer.write_uint(1, 4, ByteOrder.LITTLE)

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            writer.write_uint(256, 8)

    def test_negative_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="negative"):
            writer.write_uint(-1, 8)

    def test_zero_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="positive"):
            writer.write_uint(0, 0)

    def test_write_bytes_unaligned(self):
        writer = BitWriter()
        writer.write_uint(0xF, 4)
        writer.write_bytes(b"\xab")
        writer.pad_to_byte()
        assert writer.getvalue() == b"\xfa\xb0"

    def test_pad_to_byte_idempotent_when_aligned(self):
        writer = BitWriter()
        writer.write_bytes(b"\x01")
        writer.pad_to_byte()
        assert writer.getvalue() == b"\x01"

    def test_bit_length_tracks_partial_bytes(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        writer.write_uint(1, 3)
        assert writer.bit_length == 3
        assert not writer.is_byte_aligned
        writer.write_uint(1, 5)
        assert writer.bit_length == 8
        assert writer.is_byte_aligned


class TestBitReader:
    def test_reads_back_nibbles(self):
        reader = BitReader(b"\x45")
        assert reader.read_uint(4) == 4
        assert reader.read_uint(4) == 5
        assert reader.at_end

    def test_truncation_raises_with_counts(self):
        reader = BitReader(b"\x01")
        with pytest.raises(TruncatedDataError) as excinfo:
            reader.read_uint(16)
        assert excinfo.value.requested_bits == 16
        assert excinfo.value.available_bits == 8

    def test_read_bytes_fast_path_aligned(self):
        reader = BitReader(b"abcdef")
        assert reader.read_bytes(3) == b"abc"
        assert reader.read_bytes(3) == b"def"

    def test_read_bytes_unaligned(self):
        reader = BitReader(b"\xfa\xb0")
        assert reader.read_uint(4) == 0xF
        assert reader.read_bytes(1) == b"\xab"

    def test_read_remaining_requires_alignment(self):
        reader = BitReader(b"\xff\x00")
        reader.read_uint(3)
        with pytest.raises(MisalignedReadError):
            reader.read_remaining()

    def test_read_remaining_consumes_everything(self):
        reader = BitReader(b"\x01\x02\x03")
        reader.read_bytes(1)
        assert reader.read_remaining() == b"\x02\x03"
        assert reader.at_end

    def test_skip_to_byte(self):
        reader = BitReader(b"\xff\x41")
        reader.read_uint(3)
        reader.skip_to_byte()
        assert reader.read_bytes(1) == b"\x41"

    def test_little_endian_round_trip(self):
        reader = BitReader(b"\xcd\xab")
        assert reader.read_uint(16, ByteOrder.LITTLE) == 0xABCD

    def test_read_bool(self):
        reader = BitReader(b"\x80")
        assert reader.read_bool() is True
        assert reader.read_bool() is False


class TestRoundTripProperties:
    @given(st.lists(st.tuples(st.integers(1, 64), st.integers(min_value=0)), min_size=1, max_size=20))
    def test_uint_sequences_round_trip(self, specs):
        fields = [(bits, value % (1 << bits)) for bits, value in specs]
        writer = BitWriter()
        for bits, value in fields:
            writer.write_uint(value, bits)
        writer.pad_to_byte()
        reader = BitReader(writer.getvalue())
        for bits, value in fields:
            assert reader.read_uint(bits) == value

    @given(st.binary(max_size=64), st.integers(0, 7))
    def test_bytes_survive_arbitrary_bit_prefix(self, payload, prefix_bits):
        writer = BitWriter()
        if prefix_bits:
            writer.write_uint(0, prefix_bits)
        writer.write_bytes(payload)
        writer.pad_to_byte()
        reader = BitReader(writer.getvalue())
        if prefix_bits:
            reader.read_uint(prefix_bits)
        assert reader.read_bytes(len(payload)) == payload

    @given(st.binary(max_size=128))
    def test_writer_reader_identity_on_bytes(self, payload):
        writer = BitWriter()
        writer.write_bytes(payload)
        assert writer.getvalue() == payload
        reader = BitReader(payload)
        assert reader.read_remaining() == payload
