"""Cross-module integration: the pieces compose as one system."""

import pytest

from repro.analysis import validate_trace
from repro.core.compile import compile_spec
from repro.modelcheck import check_invariant, explore
from repro.netsim import ChannelConfig, DuplexLink, Node, Simulator
from repro.protocols.arq import (
    ACK_PACKET,
    ARQ_PACKET,
    ArqReceiver,
    ArqSender,
    build_sender_spec,
    run_transfer,
)
from repro.baseline.sockets_arq import run_baseline_transfer


class TestDslAndBaselineInteroperate:
    """Same wire format: a DSL sender talks to the hand-coded receiver."""

    def test_dsl_sender_to_baseline_receiver(self):
        from repro.baseline.sockets_arq import SocketsStyleReceiver

        sim = Simulator()
        sender_node, receiver_node = Node(sim, "s"), Node(sim, "r")
        DuplexLink(sim, sender_node, receiver_node, ChannelConfig(), seed=0)
        receiver = SocketsStyleReceiver(sim, receiver_node, "s")
        messages = [b"alpha", b"beta", b"gamma"]
        sender = ArqSender(sim, sender_node, "r", messages)
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert sender.done
        assert receiver.delivered == messages

    def test_baseline_sender_to_dsl_receiver(self):
        from repro.baseline.sockets_arq import SocketsStyleSender

        sim = Simulator()
        sender_node, receiver_node = Node(sim, "s"), Node(sim, "r")
        DuplexLink(sim, sender_node, receiver_node, ChannelConfig(), seed=0)
        receiver = ArqReceiver(sim, receiver_node, "s")
        messages = [b"alpha", b"beta", b"gamma"]
        sender = SocketsStyleSender(sim, sender_node, "r", messages)
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert sender.done
        assert receiver.delivered == messages


class TestGeneratedCodecInLiveTransfer:
    """The staged codec parses real traffic produced by the interpreter."""

    def test_generated_parse_agrees_on_live_frames(self):
        compiled = compile_spec(ARQ_PACKET)
        frames = []
        sim = Simulator()
        sender_node, receiver_node = Node(sim, "s"), Node(sim, "r")
        link = DuplexLink(sim, sender_node, receiver_node, ChannelConfig(), seed=0)
        original_send = link.forward.send

        def tap(frame):
            frames.append(frame)
            original_send(frame)

        link.forward.send = tap
        receiver = ArqReceiver(sim, receiver_node, "s")
        sender = ArqSender(sim, sender_node, "r", [b"one", b"two"])
        sender.start()
        sim.run_until(lambda: sender.done)
        assert frames
        for frame in frames:
            assert compiled.parse(frame) == ARQ_PACKET.decode(frame).values
            assert compiled.validate(compiled.parse(frame)) == []


class TestTraceAuditOfRealRun:
    def test_live_sender_trace_validates_and_replays(self):
        sim = Simulator()
        sender_node, receiver_node = Node(sim, "s"), Node(sim, "r")
        DuplexLink(
            sim, sender_node, receiver_node,
            ChannelConfig(loss_rate=0.2), seed=3,
        )
        ArqReceiver(sim, receiver_node, "s")
        sender = ArqSender(sim, sender_node, "r", [b"a", b"b", b"c"])
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert sender.done
        spec = sender.spec
        initial = spec.states["Ready"].instance(0)
        validate_trace(spec, initial, sender.machine.trace)
        # A lossy run includes recovery transitions.
        executed = {step.transition for step in sender.machine.trace}
        assert "SEND" in executed and "FINISH" in executed


class TestModelCheckerAgreesWithRuntime:
    def test_reachable_states_cover_observed_states(self):
        """Every state a live run visits is in the model's reachable set."""
        result = explore(build_sender_spec(max_seq_bits=8))
        reachable = set(
            (s.name, s.values) for s in result.reachable_states()
        )
        sim = Simulator()
        sender_node, receiver_node = Node(sim, "s"), Node(sim, "r")
        DuplexLink(
            sim, sender_node, receiver_node,
            ChannelConfig(loss_rate=0.3), seed=5,
        )
        ArqReceiver(sim, receiver_node, "s")
        sender = ArqSender(sim, sender_node, "r", [b"x"] * 5)
        observed = set()
        sender.machine.add_observer(
            lambda m, step, payload: observed.add(
                (step.target.name, step.target.values)
            )
        )
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert observed <= reachable

    def test_model_invariant_matches_run_invariant(self):
        result = explore(build_sender_spec(max_seq_bits=4))
        assert check_invariant(result, lambda s: 0 <= s.values[0] < 16) == []


class TestSystemComparison:
    def test_dsl_and_clean_baseline_agree_under_faults(self):
        messages = [f"m{i}".encode() for i in range(15)]
        config = ChannelConfig(loss_rate=0.2, corruption_rate=0.1)
        dsl = run_transfer(messages, config, seed=8)
        base = run_baseline_transfer(messages, config, seed=8)
        assert dsl.success and base.success
        assert dsl.delivered == base.delivered == messages

    def test_verified_ack_cannot_cross_protocols(self):
        """Evidence is spec-scoped: an ARQ data packet's certificate does
        not satisfy a transition demanding an ACK."""
        from repro.core.machine import Machine, UnverifiedPayloadError

        machine = Machine(build_sender_spec())
        machine.exec_trans("SEND", b"x")
        data_packet = ARQ_PACKET.verify(
            ARQ_PACKET.make(seq=0, length=1, payload=b"x")
        )
        with pytest.raises(UnverifiedPayloadError):
            machine.exec_trans("OK", data_packet)
