"""Adaptation hooks: fuzzy inference, streaming control, adaptive timers."""

import pytest

from repro.adapt.fuzzy import (
    FuzzyRule,
    FuzzySystem,
    LinguisticVariable,
    TrapezoidMF,
    TriangularMF,
    build_rate_controller,
)
from repro.adapt.streaming import run_streaming_session, stepped_capacity
from repro.adapt.timers import (
    AdaptiveIntervalController,
    RttEstimator,
    run_hello_protocol,
)


class TestMembershipFunctions:
    def test_triangle_peak_and_feet(self):
        mf = TriangularMF(0.0, 0.5, 1.0)
        assert mf(0.5) == 1.0
        assert mf(0.0) == 0.0
        assert mf(1.0) == 0.0
        assert mf(0.25) == pytest.approx(0.5)

    def test_shoulder_triangle(self):
        mf = TriangularMF(0.0, 0.0, 1.0)
        assert mf(0.0) == 1.0
        assert mf(0.5) == pytest.approx(0.5)

    def test_trapezoid_plateau(self):
        mf = TrapezoidMF(0.0, 0.2, 0.8, 1.0)
        assert mf(0.5) == 1.0
        assert mf(0.1) == pytest.approx(0.5)
        assert mf(0.9) == pytest.approx(0.5)

    def test_unordered_points_rejected(self):
        with pytest.raises(ValueError):
            TriangularMF(1.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            TrapezoidMF(0.0, 0.9, 0.5, 1.0)


class TestFuzzySystem:
    def test_rule_validation(self):
        loss = LinguisticVariable(
            "loss", {"low": TriangularMF(0, 0, 1)}, 0.0, 1.0
        )
        out = LinguisticVariable(
            "adj", {"hold": TriangularMF(0, 1, 2)}, 0.0, 2.0
        )
        with pytest.raises(ValueError, match="unknown input"):
            FuzzySystem([loss], out, [FuzzyRule((("ghost", "low"),), "hold")])
        with pytest.raises(ValueError, match="no term"):
            FuzzySystem([loss], out, [FuzzyRule((("loss", "high"),), "hold")])

    def test_inference_requires_exact_inputs(self):
        controller = build_rate_controller()
        with pytest.raises(ValueError, match="inputs must be exactly"):
            controller.infer(loss=0.1)

    def test_high_loss_cuts_rate(self):
        controller = build_rate_controller()
        assert controller.infer(loss=0.5, delay=0.5) < 0.8

    def test_clean_network_probes(self):
        controller = build_rate_controller()
        assert controller.infer(loss=0.0, delay=0.0) > 1.1

    def test_moderate_conditions_hold_or_reduce(self):
        controller = build_rate_controller()
        factor = controller.infer(loss=0.05, delay=0.4)
        assert 0.4 < factor < 1.2

    def test_output_is_monotone_in_loss(self):
        controller = build_rate_controller()
        factors = [
            controller.infer(loss=loss, delay=0.2)
            for loss in (0.0, 0.05, 0.15, 0.4)
        ]
        assert all(a >= b for a, b in zip(factors, factors[1:]))


class TestStreaming:
    # staticmethod: a bare function stored on the class would otherwise be
    # bound as a method when accessed through self.
    CAPACITY = staticmethod(
        stepped_capacity([4.0, 1.0, 3.0, 0.5, 5.0], slot_duration=12.0)
    )

    def test_fuzzy_loses_less_than_static(self):
        static = run_streaming_session(
            self.CAPACITY, duration=60, initial_rate=3.0, policy="static"
        )
        fuzzy = run_streaming_session(
            self.CAPACITY, duration=60, initial_rate=3.0, policy="fuzzy"
        )
        assert fuzzy.loss_fraction < static.loss_fraction / 2

    def test_fuzzy_has_better_utility(self):
        static = run_streaming_session(
            self.CAPACITY, duration=60, initial_rate=3.0, policy="static"
        )
        fuzzy = run_streaming_session(
            self.CAPACITY, duration=60, initial_rate=3.0, policy="fuzzy"
        )
        assert fuzzy.utility > static.utility

    def test_static_keeps_its_rate(self):
        report = run_streaming_session(
            self.CAPACITY, duration=30, initial_rate=2.0, policy="static"
        )
        assert all(rate == 2.0 for rate in report.rate_history)

    def test_fuzzy_tracks_capacity_down(self):
        capacity = stepped_capacity([5.0, 0.5], slot_duration=30.0)
        report = run_streaming_session(
            capacity, duration=60, initial_rate=4.0, policy="fuzzy"
        )
        assert report.rate_history[-1] < 1.5  # backed off toward 0.5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_streaming_session(self.CAPACITY, policy="psychic")

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            stepped_capacity([])
        with pytest.raises(ValueError):
            stepped_capacity([1.0, -1.0])


class TestRttEstimator:
    def test_first_sample_initializes(self):
        estimator = RttEstimator()
        rto = estimator.sample(0.2)
        assert estimator.srtt == 0.2
        assert rto == pytest.approx(0.2 + 4 * 0.1)

    def test_smoothing_converges(self):
        estimator = RttEstimator()
        for _ in range(100):
            estimator.sample(0.3)
        assert estimator.srtt == pytest.approx(0.3, abs=0.01)
        assert estimator.rto == pytest.approx(0.3, abs=0.05)

    def test_variance_raises_rto(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            steady.sample(0.3)
            jittery.sample(0.1 if i % 2 else 0.5)
        assert jittery.rto > steady.rto

    def test_karn_backoff_doubles(self):
        estimator = RttEstimator(initial_rto=1.0)
        assert estimator.on_retransmit() == 2.0
        assert estimator.on_retransmit() == 4.0

    def test_rto_clamped(self):
        estimator = RttEstimator(initial_rto=1.0, max_rto=8.0)
        for _ in range(10):
            estimator.on_retransmit()
        assert estimator.rto == 8.0

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(0.0)


class TestAdaptiveInterval:
    def test_churn_shortens_interval(self):
        controller = AdaptiveIntervalController()
        for _ in range(10):
            controller.observe(changes=10, elapsed=1.0)
        assert controller.interval < controller.base_interval

    def test_stability_lengthens_interval(self):
        controller = AdaptiveIntervalController()
        for _ in range(20):
            controller.observe(changes=0, elapsed=2.0)
        assert controller.interval > controller.base_interval

    def test_interval_respects_bounds(self):
        controller = AdaptiveIntervalController(
            min_interval=0.5, base_interval=1.0, max_interval=4.0
        )
        for _ in range(50):
            controller.observe(changes=100, elapsed=0.5)
        assert controller.interval >= 0.5
        for _ in range(50):
            controller.observe(changes=0, elapsed=10.0)
        assert controller.interval <= 4.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveIntervalController(
                min_interval=2.0, base_interval=1.0, max_interval=4.0
            )

    def test_elapsed_must_be_positive(self):
        with pytest.raises(ValueError):
            AdaptiveIntervalController().observe(changes=1, elapsed=0.0)


class TestHelloProtocol:
    def test_adaptive_beats_fixed_latency_under_churn(self):
        fixed = run_hello_protocol([3.0, 3.0], policy="fixed", seed=1)
        adaptive = run_hello_protocol([3.0, 3.0], policy="adaptive", seed=1)
        assert adaptive.mean_detection_latency < fixed.mean_detection_latency

    def test_adaptive_beats_fixed_overhead_when_calm(self):
        fixed = run_hello_protocol([0.01, 0.01], policy="fixed", seed=2)
        adaptive = run_hello_protocol([0.01, 0.01], policy="adaptive", seed=2)
        assert adaptive.hellos_sent < fixed.hellos_sent

    def test_reports_are_consistent(self):
        report = run_hello_protocol([1.0], policy="fixed", seed=3)
        assert report.changes == len(report.detection_latencies)
        assert report.overhead_rate == pytest.approx(
            report.hellos_sent / report.duration
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_hello_protocol([1.0], policy="magic")
