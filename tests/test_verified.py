"""The proof-carrying Verified wrapper: unforgeability and certificates."""

import pytest

from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.packet import PacketSpec, VerificationError
from repro.core.symbolic import this
from repro.core.verified import (
    Certificate,
    ForgedProofError,
    MissingEvidenceError,
    Verified,
)

ARQ = PacketSpec(
    "Arq",
    fields=[
        UInt("seq", bits=8),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8),
        Bytes("payload", length=this.length),
    ],
)


class TestUnforgeability:
    def test_direct_construction_is_rejected(self):
        packet = ARQ.make(seq=1, length=0, payload=b"")
        certificate = Certificate("Arq", ("chk_valid",))
        with pytest.raises(ForgedProofError):
            Verified(packet, certificate)

    def test_token_guessing_with_none_fails(self):
        packet = ARQ.make(seq=1, length=0, payload=b"")
        with pytest.raises(ForgedProofError):
            Verified(packet, Certificate("Arq", ()), _token=object())

    def test_verify_is_the_constructor(self):
        packet = ARQ.make(seq=1, length=0, payload=b"")
        verified = ARQ.verify(packet)
        assert verified.value == packet
        assert verified.certificate.spec_name == "Arq"

    def test_verification_failure_never_yields_a_value(self):
        packet = ARQ.make(seq=1, length=3, payload=b"abc")
        assert packet.chk != 0  # guard against a vacuous forgery below
        packet = packet.replace(chk=0)
        with pytest.raises(VerificationError) as excinfo:
            ARQ.verify(packet)
        assert any(
            v.constraint_name == "chk_valid" for v in excinfo.value.violations
        )

    def test_verified_is_immutable(self):
        verified = ARQ.verify(ARQ.make(seq=1, length=0, payload=b""))
        with pytest.raises(AttributeError):
            verified.value = None
        with pytest.raises(AttributeError):
            verified._value = None


class TestCertificates:
    def test_certificate_lists_all_constraints(self):
        verified = ARQ.parse(ARQ.encode(ARQ.make(seq=1, length=2, payload=b"ab")))
        assert verified.certificate.certifies("chk_valid")

    def test_demand_present_evidence_chains(self):
        verified = ARQ.verify(ARQ.make(seq=1, length=0, payload=b""))
        assert verified.demand("chk_valid") is verified

    def test_demand_missing_evidence_raises(self):
        verified = ARQ.verify(ARQ.make(seq=1, length=0, payload=b""))
        with pytest.raises(MissingEvidenceError) as excinfo:
            verified.demand("nonexistent_constraint")
        assert excinfo.value.constraint_name == "nonexistent_constraint"

    def test_equality_and_hash(self):
        a = ARQ.verify(ARQ.make(seq=1, length=0, payload=b""))
        b = ARQ.verify(ARQ.make(seq=1, length=0, payload=b""))
        assert a == b
        assert hash(a) == hash(b)


class TestValidateOnce:
    def test_parse_equals_decode_plus_verify(self):
        packet = ARQ.make(seq=7, length=3, payload=b"abc")
        wire = ARQ.encode(packet)
        assert ARQ.parse(wire).value == ARQ.verify(ARQ.decode(wire)).value

    def test_try_parse_returns_none_on_corruption(self):
        wire = bytearray(ARQ.encode(ARQ.make(seq=7, length=3, payload=b"abc")))
        wire[3] ^= 0xFF
        assert ARQ.try_parse(bytes(wire)) is None

    def test_try_parse_returns_none_on_truncation(self):
        assert ARQ.try_parse(b"\x01") is None

    def test_try_parse_happy_path(self):
        wire = ARQ.encode(ARQ.make(seq=7, length=3, payload=b"abc"))
        verified = ARQ.try_parse(wire)
        assert verified is not None
        assert verified.value.payload == b"abc"
