"""Code metrics and trace validation."""

import pytest

from repro.analysis import (
    TraceValidationError,
    measure_module,
    measure_source,
    trace_summary,
    validate_trace,
)
from repro.core.machine import Machine, TraceStep
from repro.protocols.arq import ACK_PACKET, build_sender_spec


class TestCodeMetrics:
    def test_plain_logic_is_not_error_handling(self):
        metrics = measure_source(
            """
            def add(a, b):
                total = a + b
                return total
            """
        )
        assert metrics.error_handling_lines == 0
        assert metrics.code_lines == 3

    def test_raise_and_assert_counted(self):
        metrics = measure_source(
            """
            def f(x):
                assert x > 0
                if x > 10:
                    raise ValueError(x)
                return x
            """
        )
        assert metrics.error_handling_lines >= 3

    def test_guard_clause_counted(self):
        metrics = measure_source(
            """
            def parse(frame):
                if len(frame) < 3:
                    return -1
                if frame[0] != 0x45:
                    return None
                return frame[1]
            """
        )
        assert metrics.error_handling_lines >= 4

    def test_if_with_real_work_not_counted(self):
        metrics = measure_source(
            """
            def f(x):
                if x > 0:
                    y = x * 2
                    send(y)
                return x
            """
        )
        assert metrics.error_handling_lines == 0

    def test_except_bodies_counted(self):
        metrics = measure_source(
            """
            def f():
                try:
                    risky()
                    more_work()
                except ValueError as exc:
                    log(exc)
                    recover()
            """
        )
        # try line + the two handler body lines; the try body itself
        # (risky/more_work) is protocol logic and must NOT be counted.
        # code lines: def, try, risky, more_work, log, recover.
        assert metrics.error_handling_lines == 3
        assert metrics.code_lines == 6

    def test_docstrings_excluded_from_code_lines(self):
        metrics = measure_source(
            '''
            def f():
                """This long docstring
                spans lines."""
                return 1
            '''
        )
        assert metrics.code_lines == 2  # def + return

    def test_validation_calls_counted(self):
        metrics = measure_source(
            """
            def f(pkt):
                validate_header(pkt)
                deliver(pkt)
            """
        )
        assert metrics.error_handling_lines == 1

    def test_fraction_computation(self):
        metrics = measure_source("x = 1")
        assert metrics.error_fraction == 0.0

    def test_baseline_denser_than_dsl_protocol_definitions(self):
        """The E5 headline: sockets-style code interleaves error handling
        everywhere, while the DSL *protocol definition* — the packet spec
        and machine builders, where the paper says this logic should live —
        contains none at all (it is carried by the framework)."""
        import inspect

        import repro.baseline.sockets_arq as baseline
        from repro.protocols import arq

        baseline_metrics = measure_module(baseline)
        definition_source = inspect.getsource(
            arq.build_sender_spec
        ) + inspect.getsource(arq.build_receiver_spec)
        dsl_metrics = measure_source(definition_source, name="arq-definitions")
        assert baseline_metrics.error_fraction > 0.2
        assert dsl_metrics.error_fraction == 0.0


class TestTraceValidation:
    def make_run(self):
        spec = build_sender_spec()
        machine = Machine(spec)
        machine.exec_trans("SEND", b"one")
        machine.exec_trans("OK", ACK_PACKET.verify(ACK_PACKET.make(seq=0)))
        machine.exec_trans("FINISH")
        return spec, machine

    def test_genuine_trace_validates(self):
        spec, machine = self.make_run()
        initial = spec.states["Ready"].instance(0)
        validate_trace(spec, initial, machine.trace)

    def test_broken_chain_detected(self):
        spec, machine = self.make_run()
        initial = spec.states["Ready"].instance(0)
        broken = list(machine.trace)
        broken[1], broken[2] = broken[2], broken[1]
        with pytest.raises(TraceValidationError, match="machine was at"):
            validate_trace(spec, initial, broken)

    def test_forged_target_detected(self):
        spec, machine = self.make_run()
        initial = spec.states["Ready"].instance(0)
        step = machine.trace[0]
        forged = TraceStep(
            transition=step.transition,
            source=step.source,
            target=spec.states["Wait"].instance(9),  # wrong parameter
            bindings=step.bindings,
        )
        with pytest.raises(TraceValidationError, match="differs from"):
            validate_trace(spec, initial, [forged])

    def test_unknown_transition_detected(self):
        spec, machine = self.make_run()
        initial = spec.states["Ready"].instance(0)
        step = machine.trace[0]
        forged = TraceStep(
            transition="TELEPORT",
            source=step.source,
            target=step.target,
            bindings=step.bindings,
        )
        with pytest.raises(TraceValidationError, match="no transition"):
            validate_trace(spec, initial, [forged])

    def test_summary_renders_each_step(self):
        spec, machine = self.make_run()
        text = trace_summary(machine.trace)
        assert "SEND" in text and "OK" in text and "FINISH" in text
        assert len(text.splitlines()) == 3
