"""Typed protocol operations: the paper's sendPacket contract (§3.4)."""

import pytest

from repro.core.machine import Machine
from repro.core.ops import (
    InconsistentEndStateError,
    OpContractError,
    ProtocolOp,
    WrongStartStateError,
)
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var
from repro.protocols.arq import ACK_PACKET, build_sender_spec, send_packet_op


def verified_ack(seq):
    return ACK_PACKET.verify(ACK_PACKET.make(seq=seq))


@pytest.fixture
def spec():
    return build_sender_spec()


@pytest.fixture
def op(spec):
    return send_packet_op(spec)


class TestContractValidation:
    def test_endings_must_use_bound_variables(self, spec):
        ready = spec.states["Ready"]
        wait = spec.states["Wait"]
        with pytest.raises(OpContractError, match="does not bind"):
            ProtocolOp(
                "bad", start=ready(Var("seq")), endings={"x": wait(Var("other"))}
            )

    def test_needs_at_least_one_ending(self, spec):
        ready = spec.states["Ready"]
        with pytest.raises(OpContractError, match="no endings"):
            ProtocolOp("bad", start=ready(Var("seq")), endings={})

    def test_names_must_be_identifiers(self, spec):
        ready = spec.states["Ready"]
        with pytest.raises(OpContractError):
            ProtocolOp("not a name", start=ready(Var("seq")), endings={"x": ready(Var("seq"))})


class TestSendPacketContract:
    """The paper's NextSent: Ready(seq+1) on success, Timeout(seq) on failure."""

    def test_successful_send_matches_next_ready(self, spec, op):
        machine = Machine(spec)

        def body(m, bindings):
            m.exec_trans("SEND", b"data")
            m.exec_trans("OK", verified_ack(bindings["seq"]))
            return "delivered"

        outcome = op.run(machine, body)
        assert outcome.ending == "next_ready"
        assert outcome.value == "delivered"
        assert outcome.state == spec.states["Ready"].instance(1)
        assert outcome.bindings_dict() == {"seq": 0}

    def test_timeout_matches_failure(self, spec, op):
        machine = Machine(spec)

        def body(m, bindings):
            m.exec_trans("SEND", b"data")
            m.exec_trans("TIMEOUT")

        outcome = op.run(machine, body)
        assert outcome.ending == "failure"
        assert outcome.state == spec.states["Timeout"].instance(0)

    def test_retry_then_success_still_next_ready(self, spec, op):
        machine = Machine(spec)

        def body(m, bindings):
            m.exec_trans("SEND", b"data")
            m.exec_trans("FAIL")  # bad ack
            m.exec_trans("SEND", b"data")  # retransmit
            m.exec_trans("OK", verified_ack(bindings["seq"]))

        assert op.run(machine, body).ending == "next_ready"

    def test_inconsistent_end_state_rejected(self, spec, op):
        machine = Machine(spec)

        def body(m, bindings):
            m.exec_trans("SEND", b"data")  # left hanging in Wait

        with pytest.raises(InconsistentEndStateError, match="Wait"):
            op.run(machine, body)

    def test_wrong_sequence_ending_rejected(self, spec, op):
        """Ending in Ready(seq+2) violates the NextSent contract even
        though Ready itself is a permitted ending *shape*."""
        machine = Machine(spec)

        def body(m, bindings):
            m.exec_trans("SEND", b"one")
            m.exec_trans("OK", verified_ack(0))
            m.exec_trans("SEND", b"two")
            m.exec_trans("OK", verified_ack(1))  # now Ready(2), not Ready(1)

        with pytest.raises(InconsistentEndStateError):
            op.run(machine, body)

    def test_wrong_start_state_rejected(self, spec, op):
        machine = Machine(spec)
        machine.exec_trans("SEND", b"data")  # now in Wait
        with pytest.raises(WrongStartStateError, match="Wait"):
            op.run(machine, lambda m, b: None)

    def test_contract_respects_sequence_wraparound(self, spec, op):
        machine = Machine(spec, initial=spec.states["Ready"].instance(255))

        def body(m, bindings):
            m.exec_trans("SEND", b"data")
            m.exec_trans("OK", verified_ack(255))

        outcome = op.run(machine, body)
        assert outcome.ending == "next_ready"
        assert outcome.state.values == (0,)  # 255 + 1 wraps


class TestGenericOps:
    def test_multiple_params(self):
        spec = MachineSpec("two")
        a = Param("a")
        b = Param("b")
        active = spec.state("Active", params=[a, b], initial=True)
        done = spec.state("Done", params=[a], final=True)
        x, y = Var("a"), Var("b")
        spec.transition("STEP", active(x, y), active(x + 1, y))
        spec.transition("END", active(x, y), done(x))
        spec.seal()
        op = ProtocolOp(
            "advance_twice",
            start=active(x, y),
            endings={"stepped": active(x + 2, y), "ended": done(x)},
        )
        machine = Machine(spec, initial=active.instance(3, 9))
        outcome = op.run(
            machine,
            lambda m, bound: (m.exec_trans("STEP"), m.exec_trans("STEP")),
        )
        assert outcome.ending == "stepped"
        assert machine.current == active.instance(5, 9)
