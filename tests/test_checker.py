"""The definition-time checker: every soundness/completeness rule.

Each test builds a machine that is wrong in exactly one way and asserts
the checker pinpoints it — the mutation corpus behind experiment E12.
"""

import pytest

from repro.core.checker import check_machine
from repro.core.fields import UInt
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param, Var


def well_formed():
    """The paper's sender shape, known-good."""
    spec = MachineSpec("sender")
    seq = Param("seq", bits=8)
    ready = spec.state("Ready", params=[seq], initial=True)
    wait = spec.state("Wait", params=[seq])
    sent = spec.state("Sent", params=[seq], final=True)
    n = Var("seq")
    spec.transition("SEND", ready(n), wait(n), requires="bytes")
    spec.transition("OK", wait(n), ready(n + 1))
    spec.transition("FINISH", ready(n), sent(n))
    return spec


class TestSoundness:
    def test_well_formed_machine_passes(self):
        report = check_machine(well_formed())
        assert report.ok
        assert report.errors == []

    def test_no_initial_state(self):
        spec = MachineSpec("m")
        a = spec.state("A", final=True)
        report = check_machine(spec)
        assert any("no initial state" in e for e in report.errors)

    def test_multiple_initial_states(self):
        spec = MachineSpec("m")
        spec.state("A", initial=True, final=True)
        spec.state("B", initial=True, final=True)
        report = check_machine(spec)
        assert any("multiple initial states" in e for e in report.errors)

    def test_foreign_state_in_transition(self):
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        other = MachineSpec("other")
        foreign = other.state("B", final=True)
        spec.transition("T", a(), foreign())
        report = check_machine(spec)
        assert any("not declared" in e for e in report.errors)

    def test_target_with_unbound_variable(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        a = spec.state("A", params=[seq], initial=True)
        b = spec.state("B", params=[seq], final=True)
        spec.transition("T", a(Var("n")), b(Var("m")))
        report = check_machine(spec)
        assert any("inputs bind" in e for e in report.errors)

    def test_inputs_legitimize_target_variables(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        a = spec.state("A", params=[seq], initial=True)
        b = spec.state("B", params=[seq], final=True)
        spec.transition("T", a(Var("n")), b(Var("m")), inputs=("m",))
        assert check_machine(spec).ok

    def test_inputs_shadowing_source_vars_rejected(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        a = spec.state("A", params=[seq], initial=True)
        b = spec.state("B", params=[seq], final=True)
        spec.transition("T", a(Var("n")), b(Var("n")), inputs=("n",))
        report = check_machine(spec)
        assert any("shadow" in e for e in report.errors)

    def test_uninvertible_source_pattern(self):
        spec = MachineSpec("m")
        pair = [Param("a", bits=4), Param("b", bits=4)]
        s = spec.state("S", params=pair, initial=True)
        f = spec.state("F", params=[Param("a", bits=4)], final=True)
        spec.transition("T", s(Var("x") + Var("y"), 0), f(Var("x")))
        report = check_machine(spec)
        assert any("invertible" in e for e in report.errors)

    def test_symbolic_guard_with_unknown_variable(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        a = spec.state("A", params=[seq], initial=True)
        b = spec.state("B", params=[seq], final=True)
        spec.transition("T", a(Var("n")), b(Var("n")), guard=Var("ghost") > 0)
        report = check_machine(spec)
        assert any("guard references" in e for e in report.errors)

    def test_bad_requires_object(self):
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        b = spec.state("B", final=True)
        spec.transition("T", a(), b(), requires=42)
        report = check_machine(spec)
        assert any("requires must be" in e for e in report.errors)

    def test_packet_spec_accepted_as_requires(self):
        packet = PacketSpec("P", fields=[UInt("x", bits=8)])
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        b = spec.state("B", final=True)
        spec.transition("T", a(), b(), requires=packet)
        assert check_machine(spec).ok

    def test_final_state_with_outgoing_transition(self):
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        f = spec.state("F", final=True)
        spec.transition("GO", a(), f())
        spec.transition("ESCAPE", f(), a())
        report = check_machine(spec)
        assert any("must be terminal" in e for e in report.errors)


class TestCompleteness:
    def test_unreachable_state_detected(self):
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        f = spec.state("F", final=True)
        spec.state("Island", final=True)
        spec.transition("GO", a(), f())
        report = check_machine(spec)
        assert any("unreachable" in e for e in report.errors)

    def test_dead_state_detected(self):
        spec = MachineSpec("m")
        a = spec.state("A", initial=True)
        trap = spec.state("Trap")
        spec.transition("GO", a(), trap())
        report = check_machine(spec)
        assert any("deadlock" in e for e in report.errors)

    def test_missing_event_handler_detected(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        wait = spec.state("Wait", params=[seq], initial=True)
        done = spec.state("Done", params=[seq], final=True)
        n = Var("seq")
        spec.transition("OK", wait(n), done(n), event="good_ack")
        spec.expect_events(wait, ["good_ack", "timer"])
        report = check_machine(spec)
        assert any(
            "does not handle declared event" in e and "timer" in e
            for e in report.errors
        )

    def test_complete_event_coverage_passes(self):
        spec = MachineSpec("m")
        seq = Param("seq", bits=8)
        wait = spec.state("Wait", params=[seq], initial=True)
        done = spec.state("Done", params=[seq], final=True)
        n = Var("seq")
        spec.transition("OK", wait(n), done(n), event="good_ack")
        spec.transition("TICK", wait(n), wait(n), event="timer")
        spec.expect_events(wait, ["good_ack", "timer"])
        assert check_machine(spec).ok

    def test_undeclared_handled_event_is_warning_not_error(self):
        spec = MachineSpec("m")
        wait = spec.state("Wait", initial=True)
        done = spec.state("Done", final=True)
        spec.transition("OK", wait(), done(), event="good_ack")
        spec.transition("EXTRA", wait(), done(), event="mystery")
        spec.expect_events(wait, ["good_ack", "mystery"])
        assert check_machine(spec).ok
        spec2 = MachineSpec("m2")
        wait2 = spec2.state("Wait", initial=True)
        done2 = spec2.state("Done", final=True)
        spec2.transition("OK", wait2(), done2(), event="good_ack")
        spec2.transition("EXTRA", wait2(), done2(), event="mystery")
        spec2.expect_events(wait2, ["good_ack"])
        report = check_machine(spec2)
        assert report.ok
        assert any("mystery" in w for w in report.warnings)


class TestRealProtocolSpecs:
    def test_paper_arq_sender_checks_clean(self):
        from repro.protocols.arq import build_sender_spec

        report = check_machine(build_sender_spec())
        assert report.ok

    def test_paper_arq_receiver_checks_clean(self):
        from repro.protocols.arq import build_receiver_spec

        report = check_machine(build_receiver_spec())
        assert report.ok

    def test_gbn_sender_checks_clean(self):
        from repro.protocols.sliding import build_gbn_sender_spec

        report = check_machine(build_gbn_sender_spec(window=4))
        assert report.ok

    def test_handshake_machines_check_clean(self):
        from repro.protocols.handshake import (
            build_initiator_spec,
            build_responder_spec,
        )

        assert check_machine(build_initiator_spec()).ok
        assert check_machine(build_responder_spec()).ok
