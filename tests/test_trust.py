"""Trust learning and the untrusted relay mesh (experiment E8)."""

import random

import pytest

from repro.trust import RelayMesh, TrustManager, run_mesh_experiment


class TestTrustManager:
    def test_unobserved_nodes_start_at_half(self):
        manager = TrustManager()
        assert manager.trust("fresh") == 0.5

    def test_successes_raise_trust(self):
        manager = TrustManager()
        for _ in range(10):
            manager.record_success(["relay-a"])
        assert manager.trust("relay-a") > 0.9

    def test_failures_lower_trust(self):
        manager = TrustManager()
        for _ in range(10):
            manager.record_failure(["relay-a"])
        assert manager.trust("relay-a") < 0.1

    def test_path_score_is_product(self):
        manager = TrustManager()
        for _ in range(8):
            manager.record_success(["a"])
            manager.record_failure(["b"])
        assert manager.path_score(["a", "b"]) == pytest.approx(
            manager.trust("a") * manager.trust("b")
        )

    def test_greedy_selection_prefers_trusted(self):
        manager = TrustManager(epsilon=0.0, rng=random.Random(0))
        for _ in range(10):
            manager.record_success(["good"])
            manager.record_failure(["bad"])
        chosen = manager.select_path([["bad"], ["good"]])
        assert chosen == ["good"]

    def test_epsilon_explores(self):
        manager = TrustManager(epsilon=1.0, rng=random.Random(0))
        for _ in range(10):
            manager.record_success(["good"])
            manager.record_failure(["bad"])
        seen = {tuple(manager.select_path([["bad"], ["good"]])) for _ in range(50)}
        assert ("bad",) in seen  # exploration still visits the bad path

    def test_ranking_sorted(self):
        manager = TrustManager()
        manager.record_success(["a"])
        manager.record_failure(["b"])
        ranking = manager.ranking()
        assert ranking[0][0] == "a"
        assert ranking[-1][0] == "b"

    def test_no_paths_rejected(self):
        with pytest.raises(ValueError):
            TrustManager().select_path([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TrustManager(epsilon=1.5)
        with pytest.raises(ValueError):
            TrustManager(decay=0.0)


class TestRelayMesh:
    def test_compromised_count_matches_fraction(self):
        mesh = RelayMesh(width=4, hops=2, compromised_fraction=0.25, seed=1)
        assert len(mesh.compromised) == 2  # 8 relays * 0.25

    def test_all_paths_enumerated(self):
        mesh = RelayMesh(width=3, hops=2, seed=1)
        paths = mesh.all_paths()
        assert len(paths) == 9
        assert all(len(path) == 2 for path in paths)

    def test_honest_path_usually_delivers(self):
        mesh = RelayMesh(
            width=2, hops=1, compromised_fraction=0.0, baseline_loss=0.0, seed=1
        )
        assert all(mesh.attempt(path) for path in mesh.all_paths())

    def test_compromised_relay_mostly_drops(self):
        mesh = RelayMesh(
            width=1, hops=1, compromised_fraction=1.0,
            compromised_drop_rate=1.0, baseline_loss=0.0, seed=1,
        )
        assert not any(mesh.attempt(path) for path in mesh.all_paths())

    def test_seeded_reproducibility(self):
        a = run_mesh_experiment("trust", rounds=100, seed=5)
        b = run_mesh_experiment("trust", rounds=100, seed=5)
        assert a.delivery_history == b.delivery_history


class TestStrategies:
    def test_trust_beats_random_under_compromise(self):
        random_ratio = 0.0
        trust_ratio = 0.0
        for seed in range(5):
            random_ratio += run_mesh_experiment(
                "random", compromised_fraction=0.4, seed=seed
            ).delivery_ratio
            trust_ratio += run_mesh_experiment(
                "trust", compromised_fraction=0.4, seed=seed
            ).delivery_ratio
        assert trust_ratio > random_ratio * 1.5

    def test_trust_converges_over_time(self):
        """Averaged over seeds: the learned tail beats the learning head."""
        early = 0.0
        late = 0.0
        for seed in range(6):
            report = run_mesh_experiment(
                "trust", rounds=600, compromised_fraction=0.5, seed=seed
            )
            history = report.delivery_history
            early += sum(history[:100]) / 100
            late += sum(history[-100:]) / 100
        assert late > early

    def test_all_strategies_tie_with_no_compromise(self):
        ratios = [
            run_mesh_experiment(s, compromised_fraction=0.0, seed=3).delivery_ratio
            for s in ("random", "fixed", "trust")
        ]
        assert max(ratios) - min(ratios) < 0.05

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_mesh_experiment("clairvoyant")

    def test_delivery_degrades_as_compromise_grows(self):
        ratios = [
            run_mesh_experiment(
                "trust", compromised_fraction=f, rounds=300, seed=4
            ).delivery_ratio
            for f in (0.0, 0.5, 1.0)
        ]
        assert ratios[0] > ratios[1] > ratios[2]
