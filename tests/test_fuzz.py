"""Fuzz and property tests: hostile inputs never produce undefined behaviour.

The paper's security motivation (§1.1) means decoders are attack surface:
whatever bytes arrive, the framework must either produce a verified value
or fail with its *declared* error types — never crash, never hang, never
hand out unvalidated data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abnf import AbnfMatchError, AbnfSyntaxError, Matcher, parse_grammar
from repro.asn1 import (
    Asn1Error,
    Boolean,
    Choice,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
    der_decode,
    per_decode,
)
from repro.core.codec import DecodeError
from repro.core.packet import VerificationError
from repro.protocols.arq import ARQ_PACKET
from repro.protocols.dns import DNS_HEADER
from repro.protocols.handshake import HANDSHAKE_PACKET
from repro.protocols.headers import ICMP_ECHO, IPV4_HEADER, TCP_HEADER, UDP_HEADER
from repro.protocols.sliding import SLIDING_ACK, SLIDING_PACKET

ALL_SPECS = [
    ARQ_PACKET,
    IPV4_HEADER,
    UDP_HEADER,
    TCP_HEADER,
    ICMP_ECHO,
    DNS_HEADER,
    HANDSHAKE_PACKET,
    SLIDING_PACKET,
    SLIDING_ACK,
]


class TestDecoderFuzz:
    @given(data=st.binary(max_size=128))
    @settings(max_examples=300)
    def test_random_bytes_never_crash_any_decoder(self, data):
        for spec in ALL_SPECS:
            try:
                packet = spec.decode(data)
            except DecodeError:
                continue  # the declared failure mode
            # If raw decoding succeeded, verification must still gate it.
            try:
                verified = spec.verify(packet)
            except VerificationError:
                continue
            # Verified random bytes must round-trip bit-exactly.
            assert spec.encode(verified.value) == data

    @given(data=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_try_parse_is_total(self, data):
        for spec in ALL_SPECS:
            result = spec.try_parse(data)
            if result is not None:
                assert spec.encode(result.value) == data

    @given(
        seed=st.integers(0, 2**32 - 1),
        flips=st.lists(st.integers(0, 8 * 10 - 1), min_size=1, max_size=8),
    )
    @settings(max_examples=150)
    def test_bitflip_storm_on_valid_packet(self, seed, flips):
        """Arbitrary multi-bit corruption of a valid ARQ packet either
        fails cleanly or (xor8 is weak to even flips per byte-column)
        yields a packet that still verifies — but NEVER a crash and NEVER
        silently different semantics with a valid certificate and
        mismatched bytes."""
        packet = ARQ_PACKET.make(seq=seed % 256, length=6, payload=b"fuzzme")
        wire = bytearray(ARQ_PACKET.encode(packet))
        for flip in flips:
            position = flip % (len(wire) * 8)
            wire[position // 8] ^= 1 << (7 - position % 8)
        result = ARQ_PACKET.try_parse(bytes(wire))
        if result is not None:
            assert ARQ_PACKET.encode(result.value) == bytes(wire)


class TestGeneratedCodecFuzz:
    @given(data=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_generated_parser_agrees_on_rejection(self, data):
        """The staged parser accepts exactly what the interpreter accepts."""
        from repro.core.compile import compile_spec

        compiled = compile_spec(ARQ_PACKET)
        try:
            interpreted = ARQ_PACKET.decode(data).values
        except DecodeError:
            with pytest.raises(ValueError):
                compiled.parse(data)
            return
        assert compiled.parse(data) == interpreted


class TestAsn1Fuzz:
    SCHEMAS = [
        Integer(),
        Integer(0, 255),
        Boolean(),
        OctetString(),
        IA5String(),
        Sequence([("a", Integer()), ("b", Boolean())]),
        SequenceOf(Integer(0, 7)),
        Choice([("x", Integer()), ("y", OctetString())]),
    ]

    @given(data=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_der_decoder_total(self, data):
        for schema in self.SCHEMAS:
            try:
                der_decode(schema, data)
            except Asn1Error:
                pass  # the declared failure mode

    @given(data=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_per_decoder_total(self, data):
        for schema in self.SCHEMAS:
            try:
                per_decode(schema, data)
            except Asn1Error:
                pass


class TestAbnfFuzz:
    @given(text=st.text(max_size=80))
    @settings(max_examples=200)
    def test_grammar_parser_total(self, text):
        try:
            parse_grammar(text)
        except AbnfSyntaxError:
            pass

    @given(data=st.binary(max_size=32))
    @settings(max_examples=150)
    def test_matcher_total_on_binary(self, data):
        matcher = Matcher(
            parse_grammar('msg = 1*OCTET\nshort = 2OCTET / 3OCTET')
        )
        matcher.fullmatch("msg", data)
        matcher.fullmatch("short", data)


class TestMachineFuzz:
    @given(
        choices=st.lists(st.integers(0, 5), min_size=1, max_size=60),
        start_seq=st.integers(0, 255),
    )
    @settings(max_examples=150)
    def test_random_walks_keep_machines_consistent(self, choices, start_seq):
        """Drive the sender with random *valid* transitions: the state is
        always a declared state, the trace always replays, and sequence
        parameters always stay in the Byte domain."""
        from repro.core.machine import Machine
        from repro.protocols.arq import ACK_PACKET, build_sender_spec

        spec = build_sender_spec()
        machine = Machine(spec, initial=spec.states["Ready"].instance(start_seq))
        for choice in choices:
            available = machine.available_transitions()
            if not available:
                break  # reached Sent
            transition = available[choice % len(available)]
            if transition.requires == "bytes":
                payload = b"payload"
            elif transition.requires is not None:
                payload = ACK_PACKET.verify(
                    ACK_PACKET.make(seq=machine.current.values[0])
                )
            else:
                payload = None
            machine.exec_trans(transition.name, payload)
            assert machine.current.state.name in spec.states
            assert 0 <= machine.current.values[0] <= 255
        # The recorded trace must replay cleanly from the start state.
        from repro.analysis import validate_trace

        validate_trace(
            spec, spec.states["Ready"].instance(start_seq), machine.trace
        )
