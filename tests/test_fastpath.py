"""repro.fastpath — the transparent compiled codec tier.

Covers the policy ladder (off / auto-with-threshold / always), generation
invalidation, transparency (compiled results byte-identical to the
interpreter across every registry spec), error canonicalization, the
divergence guard (fallback, verify, demotion, obs counter), the batch
APIs, fingerprint sharing, and the generator's refusal of subclassed
fields.
"""

import random

import pytest

from repro import fastpath, obs
from repro.conformance.registry import all_spec_entries
from repro.core import codec
from repro.core.codec import DecodeError
from repro.core.fields import UInt
from repro.core.packet import PacketSpec


@pytest.fixture(autouse=True)
def _clean_fastpath():
    """Isolate cache, stats and policy; leave the process as found."""
    previous = fastpath.get_policy()
    fastpath.reset()
    yield
    fastpath.reset()
    fastpath.set_policy(previous)


def _sample(entry, count=6, seed=7):
    rng = random.Random(seed)
    packets = [entry.generate(rng) for _ in range(count)]
    values = [p._values for p in packets]
    with fastpath.use(mode="off"):
        wires = [entry.spec.encode(p) for p in packets]
    return values, wires


def _simple_spec(name="FpSimple"):
    return PacketSpec(
        name,
        fields=[UInt("kind", bits=8), UInt("count", bits=16)],
    )


# --- policy ---


def test_policy_rejects_bad_values():
    with pytest.raises(ValueError, match="mode"):
        fastpath.FastPath(mode="sometimes")
    with pytest.raises(ValueError, match="threshold"):
        fastpath.FastPath(threshold=0)
    with pytest.raises(TypeError):
        fastpath.set_policy("always")


def test_off_mode_never_compiles():
    spec = _simple_spec()
    values = {"kind": 1, "count": 2}
    with fastpath.use(mode="off"):
        for _ in range(200):
            codec.encode_verbatim(spec, values)
        assert fastpath.state_of(spec) is None
    assert fastpath.stats()["compiles"] == 0


def test_auto_mode_promotes_at_threshold():
    spec = _simple_spec()
    values = {"kind": 1, "count": 2}
    with fastpath.use(mode="auto", threshold=5):
        for _ in range(4):
            codec.encode_verbatim(spec, values)
        assert fastpath.state_of(spec).status == "counting"
        codec.encode_verbatim(spec, values)  # fifth call crosses the bar
        assert fastpath.state_of(spec).status == "compiled"


def test_always_mode_compiles_on_first_use():
    spec = _simple_spec()
    with fastpath.use(mode="always"):
        codec.encode_verbatim(spec, {"kind": 1, "count": 2})
        assert fastpath.state_of(spec).status == "compiled"
    assert fastpath.stats()["compiles"] == 1


def test_policy_change_invalidates_cached_decisions():
    spec = _simple_spec()
    with fastpath.use(mode="always"):
        codec.encode_verbatim(spec, {"kind": 1, "count": 2})
        assert fastpath.state_of(spec) is not None
    # the surrounding policy restore bumped the generation
    assert fastpath.state_of(spec) is None


def test_use_restores_previous_policy():
    before = fastpath.get_policy()
    with fastpath.use(mode="always", verify=True) as active:
        assert active.mode == "always" and active.verify
        assert fastpath.get_policy() is active
    assert fastpath.get_policy() == before


# --- transparency ---


def test_compiled_tier_is_transparent_for_every_registry_spec():
    for entry in all_spec_entries():
        spec = entry.spec
        values_list, wires = _sample(entry)
        with fastpath.use(mode="off"):
            interp_enc = [codec.encode_verbatim(spec, v) for v in values_list]
            interp_dec = [codec.decode_packet(spec, w) for w in wires]
            interp_chk = [codec.compute_checksums(spec, v) for v in values_list]
            interp_spans = [codec.field_spans(spec, v) for v in values_list]
        with fastpath.use(mode="always"):
            fast_enc = [codec.encode_verbatim(spec, v) for v in values_list]
            fast_dec = [codec.decode_packet(spec, w) for w in wires]
            fast_chk = [codec.compute_checksums(spec, v) for v in values_list]
            fast_spans = [codec.field_spans(spec, v) for v in values_list]
            state = fastpath.state_of(spec)
            assert state is not None and state.status == "compiled", entry.name
        assert fast_enc == interp_enc, entry.name
        assert fast_dec == interp_dec, entry.name
        assert fast_chk == interp_chk, entry.name
        assert fast_spans == interp_spans, entry.name
    assert fastpath.stats()["demotions"] == 0


def test_encode_errors_are_canonical_under_the_fast_path():
    entry = next(e for e in all_spec_entries() if e.name == "ArqData")
    values_list, wires = _sample(entry)
    bad = dict(values_list[0])
    bad["seq"] = 1 << 20  # does not fit in 8 bits

    with fastpath.use(mode="off"):
        with pytest.raises(ValueError) as interp_err:
            codec.encode_verbatim(entry.spec, bad)
    with fastpath.use(mode="always"):
        with pytest.raises(ValueError) as fast_err:
            codec.encode_verbatim(entry.spec, bad)
        with pytest.raises(DecodeError):
            codec.decode_packet(entry.spec, wires[0][:1])
    assert str(fast_err.value) == str(interp_err.value)
    # both tiers rejected: agreement, not divergence
    assert fastpath.stats()["demotions"] == 0


# --- divergence guard ---


def test_compiled_error_falls_back_and_demotes():
    entry = next(e for e in all_spec_entries() if e.name == "ArqAck")
    values_list, _ = _sample(entry)
    instr = obs.enable()
    instr.reset()
    try:
        with fastpath.use(mode="always"):
            expected = codec.encode_verbatim(entry.spec, values_list[0])
            state = fastpath.state_of(entry.spec)
            assert state.status == "compiled"

            def boom(values, spans=None):
                raise ValueError("injected codegen bug")

            state.codec = state.codec._replace(build=boom)
            # the interpreter answers; the spec is demoted for this generation
            assert codec.encode_verbatim(entry.spec, values_list[0]) == expected
            assert state.status == "interpreted"
            assert state.reason == "encode-error"
            # and stays interpreted (closures no longer dispatched)
            assert codec.encode_verbatim(entry.spec, values_list[0]) == expected
        assert fastpath.stats()["demotions"] == 1
        divergences = instr.registry.counter(
            "fastpath.divergences", spec="ArqAck", reason="encode-error"
        )
        assert divergences.value == 1
    finally:
        obs.disable()


def test_verify_mode_catches_wrong_bytes():
    entry = next(e for e in all_spec_entries() if e.name == "ArqAck")
    values_list, _ = _sample(entry)
    with fastpath.use(mode="always", verify=True):
        expected = codec.encode_verbatim(entry.spec, values_list[0])
        state = fastpath.state_of(entry.spec)
        wrong = b"\x00" * len(expected)

        def lies(values, spans=None):
            return wrong

        state.codec = state.codec._replace(build=lies)
        assert codec.encode_verbatim(entry.spec, values_list[0]) == expected
        assert state.status == "interpreted"
        assert state.reason == "encode-mismatch"
    assert fastpath.stats()["demotions"] == 1


def test_verify_mode_catches_wrong_decode():
    entry = next(e for e in all_spec_entries() if e.name == "ArqAck")
    values_list, wires = _sample(entry)
    with fastpath.use(mode="always", verify=True):
        expected = codec.decode_packet(entry.spec, wires[0])
        state = fastpath.state_of(entry.spec)

        def lies(data):
            return {name: 0 for name in expected}

        state.codec = state.codec._replace(parse=lies)
        assert codec.decode_packet(entry.spec, wires[0]) == expected
        assert state.status == "interpreted"
        assert state.reason == "decode-mismatch"
    assert fastpath.stats()["demotions"] == 1


# --- batch APIs ---


def test_batch_matches_single_calls():
    for entry in all_spec_entries():
        values_list, wires = _sample(entry, count=5)
        with fastpath.use(mode="off"):
            loop_enc = [codec.encode_verbatim(entry.spec, v) for v in values_list]
            loop_dec = [codec.decode_packet(entry.spec, w) for w in wires]
        with fastpath.use(mode="always"):
            assert fastpath.encode_many(entry.spec, values_list) == loop_enc
            assert fastpath.decode_many(entry.spec, wires) == loop_dec


def test_batch_forces_compilation_even_when_auto_is_cold():
    spec = _simple_spec()
    with fastpath.use(mode="auto", threshold=10_000):
        fastpath.encode_many(spec, [{"kind": 1, "count": 2}])
        assert fastpath.state_of(spec).status == "compiled"


def test_batch_accepts_packets_and_rejects_junk():
    entry = next(e for e in all_spec_entries() if e.name == "Handshake")
    rng = random.Random(3)
    packets = [entry.generate(rng) for _ in range(4)]
    with fastpath.use(mode="always"):
        wires = fastpath.encode_many(entry.spec, packets)
        assert wires == [entry.spec.encode(p) for p in packets]
        with pytest.raises(TypeError, match="field-value mapping"):
            fastpath.encode_many(entry.spec, [b"not a packet"])


def test_packetspec_batch_methods_return_packets():
    entry = next(e for e in all_spec_entries() if e.name == "ArqAck")
    values_list, wires = _sample(entry, count=4)
    with fastpath.use(mode="always"):
        encoded = entry.spec.encode_many(values_list)
        assert encoded == wires
        decoded = entry.spec.decode_many(wires)
    assert [p._values for p in decoded] == values_list
    assert all(p.spec is entry.spec for p in decoded)


def test_batch_records_one_obs_sample_per_batch():
    entry = next(e for e in all_spec_entries() if e.name == "ArqAck")
    values_list, wires = _sample(entry, count=6)
    instr = obs.enable()
    instr.reset()
    try:
        with fastpath.use(mode="always"):
            fastpath.encode_many(entry.spec, values_list, obs=instr)
            fastpath.decode_many(entry.spec, wires, obs=instr)
        registry = instr.registry
        assert registry.counter("codec.batches", op="encode", spec="ArqAck").value == 1
        assert registry.counter("codec.batches", op="decode", spec="ArqAck").value == 1
        assert (
            registry.counter("codec.encoded_packets", spec="ArqAck").value
            == len(values_list)
        )
        assert (
            registry.counter("codec.decoded_bytes", spec="ArqAck").value
            == sum(len(w) for w in wires)
        )
    finally:
        obs.disable()


# --- the cache ---


def test_structurally_identical_specs_share_one_codec():
    first, second = _simple_spec("AlphaWire"), _simple_spec("BetaWire")
    with fastpath.use(mode="always"):
        codec.encode_verbatim(first, {"kind": 1, "count": 2})
        codec.encode_verbatim(second, {"kind": 1, "count": 2})
        assert (
            fastpath.state_of(first).fingerprint
            == fastpath.state_of(second).fingerprint
        )
    stats = fastpath.stats()
    assert stats["compiles"] == 1
    assert stats["shared"] == 1
    assert stats["cached_codecs"] == 1


def test_subclassed_fields_are_refused_not_misread():
    class WideUInt(UInt):
        """A field whose overridden behaviour codegen cannot stage."""

        def encode(self, writer, value, context):  # pragma: no cover
            raise AssertionError("never staged")

    shadowed = PacketSpec(
        "FpShadowed",
        fields=[WideUInt("kind", bits=8), UInt("count", bits=16)],
    )
    plain = _simple_spec()
    with fastpath.use(mode="always"):
        assert fastpath.active_state(shadowed) is None
        state = fastpath.state_of(shadowed)
        assert state.status == "interpreted"
        assert state.reason.startswith("codegen:")
        # the same-shape spec with plain fields is unaffected
        codec.encode_verbatim(plain, {"kind": 1, "count": 2})
        assert fastpath.state_of(plain).status == "compiled"
        assert state.fingerprint != fastpath.state_of(plain).fingerprint
    stats = fastpath.stats()
    assert stats["failures"] == 1
    assert stats["compiles"] == 1


def test_refusal_and_demotion_are_terminal_until_reset():
    spec = _simple_spec()
    with fastpath.use(mode="always"):
        codec.encode_verbatim(spec, {"kind": 1, "count": 2})
        state = fastpath.state_of(spec)
        fastpath.demote(state, "test-demotion")
        # force=True must not resurrect a demoted spec
        assert fastpath.active_state(spec, force=True) is None
        assert fastpath.state_of(spec).status == "interpreted"
    fastpath.reset()
    with fastpath.use(mode="always"):
        codec.encode_verbatim(spec, {"kind": 1, "count": 2})
        assert fastpath.state_of(spec).status == "compiled"


def test_metrics_handle_caches_survive_reset_but_not_clear():
    instr = obs.enable()
    instr.reset()
    try:
        registry = instr.registry
        cache = registry.handle_cache("codec")
        cache["probe"] = "handle"
        registry.reset()  # zeroes values, keeps handles
        assert registry.handle_cache("codec")["probe"] == "handle"
        registry.clear()  # drops metrics, so handles must go too
        assert "probe" not in registry.handle_cache("codec")
    finally:
        obs.disable()


# --- conformance under verify ---


@pytest.mark.slow
def test_conformance_fuzz_smoke_under_verify():
    from repro.conformance.runner import run_all

    with fastpath.use(mode="always", verify=True):
        report = run_all(seed=0, budget=150, engines=["fuzz"], specs=["ArqData"])
    assert report.ok
    assert fastpath.stats()["demotions"] == 0
