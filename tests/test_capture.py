"""The capture tool: taps, transcripts, spec-driven decoding."""

from repro.netsim import ChannelConfig, DuplexLink, Node, Simulator
from repro.netsim.capture import Capture
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, ArqReceiver, ArqSender


def run_captured_transfer(config=None, seed=0, messages=None):
    sim = Simulator()
    sender_node, receiver_node = Node(sim, "alice"), Node(sim, "bob")
    link = DuplexLink(
        sim, sender_node, receiver_node, config or ChannelConfig(), seed=seed
    )
    capture = Capture(specs=[ARQ_PACKET, ACK_PACKET])
    capture.tap(link.forward)
    capture.tap(link.backward)
    receiver = ArqReceiver(sim, receiver_node, "alice")
    sender = ArqSender(
        sim, sender_node, "bob", messages or [b"one", b"two"], max_retries=50
    )
    sender.start()
    sim.run_until(lambda: sender.done or sender.failed)
    return capture, sender, receiver


class TestCapture:
    def test_clean_transfer_frame_count(self):
        capture, sender, receiver = run_captured_transfer()
        # 2 data frames forward + 2 acks backward.
        assert len(capture) == 4
        directions = {frame.channel_name for frame in capture.frames}
        assert directions == {"alice->bob", "bob->alice"}

    def test_frames_decode_under_registered_specs(self):
        capture, _, _ = run_captured_transfer()
        parsed = capture.parsed_frames()
        assert len(parsed) == len(capture)
        spec_names = [v.certificate.spec_name for _, v in parsed]
        assert spec_names.count("ArqData") == 2
        assert spec_names.count("ArqAck") == 2

    def test_transcript_renders_one_line_per_frame(self):
        capture, _, _ = run_captured_transfer()
        transcript = capture.transcript()
        assert len(transcript.splitlines()) == 4
        assert "ArqData" in transcript and "ArqAck" in transcript
        assert "seq=0" in transcript

    def test_timestamps_are_monotone(self):
        capture, _, _ = run_captured_transfer(
            ChannelConfig(loss_rate=0.3), seed=5,
            messages=[bytes([i]) for i in range(6)],
        )
        times = [frame.time for frame in capture.frames]
        assert times == sorted(times)

    def test_retransmissions_visible_in_capture(self):
        capture, sender, _ = run_captured_transfer(
            ChannelConfig(loss_rate=0.4), seed=3,
            messages=[bytes([i]) for i in range(5)],
        )
        data_frames = [
            f for f in capture.frames if f.channel_name == "alice->bob"
        ]
        assert len(data_frames) == 5 + sender.retransmissions

    def test_unparseable_frames_shown_as_hex(self):
        capture = Capture(specs=[ARQ_PACKET])
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = DuplexLink(sim, a, b, ChannelConfig())
        capture.tap(link.forward)
        b.on_receive(lambda frame, sender: None)
        a.send("b", b"\xff")
        sim.run()
        transcript = capture.transcript()
        assert "UNPARSEABLE" in transcript
        assert "ff" in transcript

    def test_untap_restores_channel(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = DuplexLink(sim, a, b, ChannelConfig())
        capture = Capture()
        capture.tap(link.forward)
        b.on_receive(lambda frame, sender: None)
        a.send("b", b"x")
        capture.untap_all()
        a.send("b", b"y")
        sim.run()
        assert len(capture) == 1  # only the pre-untap frame

    def test_sequence_chart_renders_arrows_both_ways(self):
        capture, _, _ = run_captured_transfer()
        chart = capture.sequence_chart()
        lines = chart.splitlines()
        assert "alice" in lines[0] and "bob" in lines[0]
        rightward = [l for l in lines[1:] if l.rstrip().endswith(">|")]
        leftward = [l for l in lines[1:] if "|<" in l]
        assert len(rightward) == 2  # two data frames
        assert len(leftward) == 2  # two acks

    def test_sequence_chart_falls_back_without_parties(self):
        capture = Capture()
        assert capture.sequence_chart() == capture.transcript()

    def test_capture_is_passive(self):
        """Tapping must not change what the receiver sees."""
        plain = run_captured_transfer(
            ChannelConfig(loss_rate=0.25), seed=9,
            messages=[bytes([i]) for i in range(8)],
        )[2].delivered
        # Without taps:
        sim = Simulator()
        s, r = Node(sim, "alice"), Node(sim, "bob")
        DuplexLink(sim, s, r, ChannelConfig(loss_rate=0.25), seed=9)
        receiver = ArqReceiver(sim, r, "alice")
        sender = ArqSender(
            sim, s, "bob", [bytes([i]) for i in range(8)], max_retries=50
        )
        sender.start()
        sim.run_until(lambda: sender.done or sender.failed)
        assert receiver.delivered == plain
