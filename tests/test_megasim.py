"""Tests for ``repro.megasim``: population-scale simulation.

Four properties carry the subsystem:

* **fidelity** — a population run is step-for-step equivalent to
  driving one :class:`~repro.core.machine.Machine` object per node
  through the same planned events (the per-object runtime is the
  semantics oracle);
* **determinism** — same config, same transcript, every time;
* **partition invariance** — serial, in-process partitioned, and
  pooled runs produce byte-identical transcripts at any shard count,
  through worker crashes and cold rebuilds;
* **amortized observability** — running with instrumentation *armed*
  stays within the repo's 1.10x overhead gate, because counters flush
  once per epoch, not once per event.
"""

import time

import pytest

from repro.core import dispatch
from repro.core.machine import Machine
from repro.megasim import (
    Population,
    RunConfig,
    ShardEngine,
    StaleShardError,
    get_workload,
    run_partitioned,
    run_serial,
)
from repro.megasim.engine import route, shard_bounds
from repro.megasim.shard import ShardedRun, reset_cache, run_epoch, run_sharded
from repro.megasim.workloads import WORKLOADS, epoch_seed
from repro.obs import NULL_OBS, Instrumentation

SMALL = RunConfig(workload="olsr", machines=400, epochs=4, seed=21)
SMALL_TRUST = RunConfig(workload="trust", machines=400, epochs=4, seed=21)


def _replay_with_machines(config):
    """The oracle: one Machine per node, probed down each event group."""
    workload = get_workload(config.workload)
    initial = workload.spec.initial_states[0]
    machines = [
        Machine(workload.spec, initial.instance(workload.initial_value(i)))
        for i in range(config.machines)
    ]
    inbox = []
    for epoch in range(config.epochs):
        cohorts = [[] for _ in workload.events]
        outbox = []
        workload.plan(
            epoch_seed(config.seed, epoch),
            0,
            config.machines,
            config.machines,
            cohorts,
            outbox,
        )
        for dst, _src, kind in sorted(inbox):
            cohorts[workload.message_event[kind]].append(dst)
        for event_id, indices in enumerate(cohorts):
            group = workload.events[event_id]
            for i in indices:
                for name in group:
                    if machines[i].try_exec(name) is not None:
                        break
                else:
                    pytest.fail(
                        f"machine {i} accepted no transition of {group}"
                    )
        inbox = outbox
    return machines


class TestWorkloads:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_specs_seal_and_stage_fully(self, name):
        workload = get_workload(name)
        assert workload.spec.sealed
        table = dispatch.staged_table(workload.spec)
        for group in workload.events:
            for transition_name in group:
                staged = table.by_name[transition_name]
                # Every workload transition gets the fused cohort tier.
                assert staged.cohort is not None, transition_name
        for kind, event_id in workload.message_event.items():
            assert 0 <= event_id < len(workload.events)

    def test_plans_hash_global_identity_only(self):
        workload = get_workload("olsr")
        eseed = epoch_seed(5, 2)
        whole, whole_out = [[] for _ in workload.events], []
        workload.plan(eseed, 0, 100, 100, whole, whole_out)
        left, left_out = [[] for _ in workload.events], []
        right, right_out = [[] for _ in workload.events], []
        workload.plan(eseed, 0, 37, 100, left, left_out)
        workload.plan(eseed, 37, 100, 100, right, right_out)
        for event_id in range(len(workload.events)):
            merged = left[event_id] + [i + 37 for i in right[event_id]]
            assert merged == whole[event_id]
        assert sorted(left_out + right_out) == sorted(whole_out)


class TestFidelity:
    """Cohort kernels agree with the per-object Machine runtime."""

    @pytest.mark.parametrize("config", [SMALL, SMALL_TRUST], ids=["olsr", "trust"])
    def test_population_matches_machine_replay(self, config):
        machines = _replay_with_machines(config)
        engine = ShardEngine(config, 0, config.machines)
        inbox = []
        for epoch in range(config.epochs):
            result = engine.step(epoch, inbox)
            inbox = sorted(result.outbox)
        assert engine.population.rejected == 0
        for i, machine in enumerate(machines):
            assert engine.population.state_of(i) == machine.current, i

    @pytest.mark.parametrize("config", [SMALL_TRUST], ids=["trust"])
    def test_interpreted_tier_matches_staged(self, config):
        staged_run = run_serial(config)
        dispatch.set_enabled(False)
        try:
            # Drop the cached engines' staged tables from view: a fresh
            # population built now uses the interpreted kernels.
            interpreted_run = run_serial(config)
        finally:
            dispatch.set_enabled(True)
        assert interpreted_run.text() == staged_run.text()


class TestDeterminismAndInvariance:
    def test_serial_runs_are_identical(self):
        assert run_serial(SMALL).text() == run_serial(SMALL).text()

    def test_seed_changes_the_transcript(self):
        other = RunConfig(
            workload=SMALL.workload,
            machines=SMALL.machines,
            epochs=SMALL.epochs,
            seed=SMALL.seed + 1,
        )
        assert run_serial(other).text() != run_serial(SMALL).text()

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("config", [SMALL, SMALL_TRUST], ids=["olsr", "trust"])
    def test_partitioned_matches_serial(self, config, shards):
        assert run_partitioned(config, shards).text() == run_serial(config).text()

    def test_header_never_names_the_partitioning(self):
        # Byte-identity across worker counts requires the transcript to
        # be silent about how it was produced.
        text = run_serial(SMALL).text()
        assert "worker" not in text and "shard" not in text

    def test_shard_bounds_cover_and_balance(self):
        bounds = shard_bounds(10_007, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10_007
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_route_sorts_each_box(self):
        bounds = [(0, 5), (5, 10)]
        boxes = route([(7, 2, 0), (1, 9, 1), (7, 1, 0), (1, 0, 0)], bounds)
        assert boxes[0] == [(1, 0, 0), (1, 9, 1)]
        assert boxes[1] == [(7, 1, 0), (7, 2, 0)]


class TestShardProtocol:
    """The worker-side cache, cold handshake, and stale detection."""

    def test_cold_shard_mid_run_asks_for_history(self):
        reset_cache()
        config = SMALL.to_dict()
        assert run_epoch("t1", 0, 1, 1, [], config)["status"] == "cold"

    def test_rebuild_from_history_matches_warm_path(self):
        reset_cache()
        config = SMALL.to_dict()
        warm = [run_epoch("warm", 0, 1, epoch, [], config) for epoch in range(3)]
        reset_cache()
        rebuilt = run_epoch("cold", 0, 1, 2, [], config, history=[[], []])
        assert rebuilt["digest"] == warm[2]["digest"]
        assert rebuilt["fired"] == warm[2]["fired"]

    def test_stale_engine_is_rebuilt_not_advanced(self):
        reset_cache()
        config = SMALL.to_dict()
        run_epoch("t2", 0, 1, 0, [], config)
        # Epoch 1 ran "elsewhere"; asking for epoch 2 here must not
        # silently run 1-then-2 — it needs history to replay.
        assert run_epoch("t2", 0, 1, 2, [], config)["status"] == "cold"
        replayed = run_epoch("t2", 0, 1, 2, [], config, history=[[], []])
        assert replayed["status"] == "ok"

    def test_engine_refuses_out_of_order_epochs(self):
        engine = ShardEngine(SMALL, 0, SMALL.machines)
        engine.step(0, [])
        with pytest.raises(StaleShardError):
            engine.step(2, [])


@pytest.fixture(scope="module")
def pool():
    from repro.parallel.pool import ShardedPool

    pool = ShardedPool(workers=2)
    yield pool
    pool.close()


class TestPooledInvariance:
    def test_pooled_transcript_matches_serial(self, pool):
        config = RunConfig(workload="trust", machines=1500, epochs=3, seed=5)
        assert run_sharded(config, pool).text() == run_serial(config).text()

    def test_worker_crash_rebuilds_deterministically(self, pool):
        config = RunConfig(workload="olsr", machines=1200, epochs=5, seed=13)
        serial = run_serial(config)
        run = ShardedRun(config, pool)
        lines = [config.header()]
        for epoch in range(config.epochs):
            if epoch == 2:
                pool.inject_crash(0)
            totals = run.step(epoch)
            lines.append(
                f"epoch={epoch} fired={totals.fired} "
                f"msgs={totals.emitted} digest={totals.digest:016x}"
            )
        assert run.rebuilds >= 1
        assert "\n".join(lines) + "\n" == serial.text()


class TestAmortizedObservability:
    def test_counters_flush_per_epoch_totals(self):
        obs = Instrumentation()
        engine = ShardEngine(SMALL, 0, SMALL.machines, obs=obs)
        inbox = []
        fired = emitted = 0
        for epoch in range(SMALL.epochs):
            result = engine.step(epoch, inbox)
            fired += result.fired
            emitted += result.emitted
            inbox = sorted(result.outbox)
        snapshot = obs.registry.snapshot()
        named = {
            name: entries[0]["value"]
            for name, entries in snapshot.items()
            if entries[0]["labels"].get("workload") == "olsr"
        }
        assert named["megasim.events"] == fired
        assert named["megasim.messages_sent"] == emitted
        assert named["megasim.epochs"] == SMALL.epochs
        assert "megasim.rejected" not in named

    def test_armed_instrumentation_within_overhead_gate(self):
        """Armed — not merely disabled — obs stays under the 1.10x gate."""
        config = RunConfig(workload="olsr", machines=2500, epochs=4, seed=3)

        def measure(obs):
            engine = ShardEngine(config, 0, config.machines, obs=obs)
            inbox = []
            start = time.perf_counter()
            for epoch in range(config.epochs):
                result = engine.step(epoch, inbox)
                inbox = sorted(result.outbox)
            return time.perf_counter() - start

        measure(NULL_OBS)  # warm caches before the first timed trial
        armed_samples, baseline_samples = [], []
        for _ in range(7):
            baseline_samples.append(measure(NULL_OBS))
            armed_samples.append(measure(Instrumentation()))
        ratio = min(armed_samples) / min(baseline_samples)
        assert ratio <= 1.10, (
            f"armed megasim instrumentation is {ratio:.3f}x the no-op "
            f"baseline (bound 1.10x; flushes must stay per-epoch)"
        )


class TestCohortKernels:
    def test_guard_misses_fall_through_the_group(self):
        workload = get_workload("trust")
        population = Population(workload, 0, 10)
        # Score CAP everywhere: GOOD must miss, GOOD_SAT must absorb.
        for i in range(10):
            population.values[i] = workload.CAP
        fired = population.apply(1, list(range(10)))
        assert fired == 10
        assert list(population.values) == [workload.CAP] * 10
        # Score 0 everywhere: BAD misses, BAD_FLOOR absorbs.
        for i in range(10):
            population.values[i] = 0
        assert population.apply(2, list(range(10))) == 10
        assert list(population.values) == [0] * 10
        assert population.rejected == 0

    def test_values_wrap_like_machine_params(self):
        workload = get_workload("olsr")
        population = Population(workload, 0, 3)
        for i in range(3):
            population.values[i] = 0xFFFF
        population.apply(0, [0, 1, 2])  # HELLO: seq + 1 wraps at 16 bits
        assert list(population.values) == [0, 0, 0]

    def test_large_population_smoke(self):
        # A scaled-down stand-in for the 1M CLI acceptance run: the
        # dense layout must build and step well past toy sizes.
        config = RunConfig(workload="olsr", machines=50_000, epochs=2, seed=1)
        result = run_serial(config)
        assert result.fired >= config.machines * config.epochs
        assert len(result.lines) == config.epochs + 1
