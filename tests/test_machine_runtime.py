"""The machine runtime: exec_trans soundness, evidence demands, traces."""

import pytest

from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import (
    InvalidTransitionError,
    Machine,
    UnverifiedPayloadError,
    replay_trace,
)
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, MachineSpecError, Param
from repro.core.symbolic import Var, this

ARQ = PacketSpec(
    "ArqT",
    fields=[
        UInt("seq", bits=8),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8),
        Bytes("payload", length=this.length),
    ],
)

OTHER = PacketSpec("OtherT", fields=[UInt("x", bits=8)])


def sender_spec():
    spec = MachineSpec("sender")
    seq = Param("seq", bits=8)
    ready = spec.state("Ready", params=[seq], initial=True)
    wait = spec.state("Wait", params=[seq])
    sent = spec.state("Sent", params=[seq], final=True)
    n = Var("seq")
    spec.transition("SEND", ready(n), wait(n), requires="bytes")
    spec.transition("OK", wait(n), ready(n + 1), requires=ARQ)
    spec.transition("FAIL", wait(n), ready(n))
    spec.transition("FINISH", ready(n), sent(n))
    return spec.seal()


def verified_packet(seq=0):
    return ARQ.verify(ARQ.make(seq=seq, length=2, payload=b"ok"))


class TestInstantiation:
    def test_unsealed_spec_rejected(self):
        spec = MachineSpec("raw")
        spec.state("A", initial=True, final=True)
        with pytest.raises(MachineSpecError, match="sealed"):
            Machine(spec)

    def test_default_initial_state_is_zeroed(self):
        machine = Machine(sender_spec())
        assert machine.current.name == "Ready"
        assert machine.current.values == (0,)

    def test_explicit_initial_state(self):
        spec = sender_spec()
        machine = Machine(spec, initial=spec.states["Ready"].instance(7))
        assert machine.current.values == (7,)

    def test_foreign_initial_state_rejected(self):
        spec = sender_spec()
        other = sender_spec()
        with pytest.raises(MachineSpecError, match="does not belong"):
            Machine(spec, initial=other.states["Ready"].instance(0))


class TestSoundExecution:
    def test_valid_sequence(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"data")
        machine.exec_trans("OK", verified_packet())
        assert machine.current.values == (1,)

    def test_sequence_wraps_at_byte(self):
        spec = sender_spec()
        machine = Machine(spec, initial=spec.states["Wait"].instance(255))
        machine.exec_trans("OK", verified_packet())
        assert machine.current.values == (0,)

    def test_invalid_source_state_rejected(self):
        machine = Machine(sender_spec())
        with pytest.raises(InvalidTransitionError, match="does not match"):
            machine.exec_trans("OK", verified_packet())

    def test_unknown_transition_rejected(self):
        machine = Machine(sender_spec())
        with pytest.raises(InvalidTransitionError, match="no such transition"):
            machine.exec_trans("TELEPORT")

    def test_failed_transition_leaves_machine_unchanged(self):
        machine = Machine(sender_spec())
        before = machine.current
        with pytest.raises(InvalidTransitionError):
            machine.exec_trans("OK", verified_packet())
        assert machine.current == before
        assert machine.trace == ()

    def test_finished_machine_accepts_nothing(self):
        machine = Machine(sender_spec())
        machine.exec_trans("FINISH")
        assert machine.is_finished
        with pytest.raises(InvalidTransitionError):
            machine.exec_trans("SEND", b"x")


class TestEvidenceDemands:
    def test_bytes_requirement(self):
        machine = Machine(sender_spec())
        with pytest.raises(InvalidTransitionError, match="byte payload"):
            machine.exec_trans("SEND", "not bytes")

    def test_no_payload_transition_rejects_payload(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"x")
        with pytest.raises(InvalidTransitionError, match="no payload"):
            machine.exec_trans("FAIL", b"unexpected")

    def test_raw_packet_rejected_where_verified_demanded(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"x")
        raw = ARQ.make(seq=0, length=0, payload=b"")
        with pytest.raises(UnverifiedPayloadError, match="Verified"):
            machine.exec_trans("OK", raw)

    def test_verified_of_wrong_spec_rejected(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"x")
        wrong = OTHER.verify(OTHER.make(x=1))
        with pytest.raises(UnverifiedPayloadError, match="OtherT"):
            machine.exec_trans("OK", wrong)

    def test_verified_of_right_spec_accepted(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("OK", verified_packet())
        assert machine.current.name == "Ready"


class TestInputs:
    def build(self):
        spec = MachineSpec("windowed")
        base = Param("base")
        active = spec.state("Active", params=[base], initial=True)
        done = spec.state("Done", params=[base], final=True)
        b, a = Var("base"), Var("ack")
        spec.transition(
            "ACK", active(b), active(a + 1), inputs=("ack",), guard=a >= b
        )
        spec.transition("STOP", active(b), done(b))
        return spec.seal()

    def test_input_drives_target(self):
        machine = Machine(self.build())
        machine.exec_trans("ACK", ack=4)
        assert machine.current.values == (5,)

    def test_guard_constrains_input(self):
        machine = Machine(self.build())
        machine.exec_trans("ACK", ack=3)
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("ACK", ack=1)

    def test_missing_input_rejected(self):
        machine = Machine(self.build())
        with pytest.raises(InvalidTransitionError, match="declares inputs"):
            machine.exec_trans("ACK")

    def test_unexpected_input_rejected(self):
        machine = Machine(self.build())
        with pytest.raises(InvalidTransitionError, match="declares inputs"):
            machine.exec_trans("STOP", ack=1)

    def test_non_integer_input_rejected(self):
        machine = Machine(self.build())
        with pytest.raises(InvalidTransitionError, match="must be an int"):
            machine.exec_trans("ACK", ack="five")


class TestIntrospection:
    def test_available_transitions(self):
        machine = Machine(sender_spec())
        names = {t.name for t in machine.available_transitions()}
        assert names == {"SEND", "FINISH"}
        machine.exec_trans("SEND", b"x")
        names = {t.name for t in machine.available_transitions()}
        assert names == {"OK", "FAIL"}

    def test_expect_state(self):
        machine = Machine(sender_spec())
        machine.expect_state("Ready", seq=0)
        with pytest.raises(InvalidTransitionError, match="expected state"):
            machine.expect_state("Wait")
        with pytest.raises(InvalidTransitionError, match="seq=3"):
            machine.expect_state("Ready", seq=3)

    def test_in_state(self):
        machine = Machine(sender_spec())
        assert machine.in_state("Ready")
        assert not machine.in_state("Wait")


class TestTraceAndObservers:
    def test_trace_records_steps(self):
        machine = Machine(sender_spec())
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("OK", verified_packet())
        assert [s.transition for s in machine.trace] == ["SEND", "OK"]
        assert machine.trace[1].bindings_dict() == {"seq": 0}
        assert machine.trace[1].target.values == (1,)

    def test_observers_fire_after_each_step(self):
        machine = Machine(sender_spec())
        seen = []
        machine.add_observer(lambda m, step, payload: seen.append(step.transition))
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("FAIL")
        assert seen == ["SEND", "FAIL"]

    def test_replay_trace_reproduces_run(self):
        spec = sender_spec()
        machine = Machine(spec)
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("OK", verified_packet())
        machine.exec_trans("FINISH")
        replayed = replay_trace(
            spec,
            spec.states["Ready"].instance(0),
            [("SEND", b"x"), ("OK", verified_packet()), ("FINISH", None)],
        )
        assert replayed.current == machine.current

    def test_replay_with_inputs(self):
        spec = MachineSpec("w")
        base = Param("base")
        active = spec.state("Active", params=[base], initial=True)
        done = spec.state("Done", params=[base], final=True)
        b, a = Var("base"), Var("ack")
        spec.transition("ACK", active(b), active(a + 1), inputs=("ack",))
        spec.transition("STOP", active(b), done(b))
        spec.seal()
        machine = replay_trace(
            spec,
            active.instance(0),
            [("ACK", None, {"ack": 4}), ("STOP", None, {})],
        )
        assert machine.current == done.instance(5)


class TestRejectionCounters:
    """Rejected transitions land in the right labeled obs counter."""

    def _machine(self):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        return Machine(sender_spec(), obs=instr), instr

    def _rejected(self, instr, transition, reason):
        return instr.registry.value(
            "machine.transitions_rejected",
            machine="sender", transition=transition, reason=reason,
        )

    def test_unknown_transition_labeled(self):
        machine, instr = self._machine()
        with pytest.raises(InvalidTransitionError):
            machine.exec_trans("NO_SUCH")
        assert self._rejected(instr, "NO_SUCH", "unknown_transition") == 1

    def test_dispatch_mismatch_labeled(self):
        machine, instr = self._machine()
        with pytest.raises(InvalidTransitionError):
            machine.exec_trans("OK", verified_packet())  # in Ready, not Wait
        assert self._rejected(instr, "OK", "dispatch") == 1

    def test_missing_evidence_labeled(self):
        machine, instr = self._machine()
        machine.exec_trans("SEND", b"x")
        with pytest.raises(UnverifiedPayloadError):
            machine.exec_trans("OK", b"raw")
        assert self._rejected(instr, "OK", "evidence") == 1

    def test_wrong_spec_evidence_labeled(self):
        machine, instr = self._machine()
        machine.exec_trans("SEND", b"x")
        with pytest.raises(UnverifiedPayloadError):
            machine.exec_trans("OK", OTHER.verify(OTHER.make(x=1)))
        assert self._rejected(instr, "OK", "evidence") == 1

    def test_executions_counted_alongside(self):
        machine, instr = self._machine()
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("FAIL")
        assert instr.registry.value(
            "machine.transitions_executed", machine="sender", transition="SEND"
        ) == 1
        assert instr.registry.value(
            "machine.transitions_executed", machine="sender", transition="FAIL"
        ) == 1
        assert machine.current.name == "Ready"


class TestStagedDispatch:
    """The compiled dispatch tier changes speed, never behaviour."""

    def _guarded_spec(self):
        spec = MachineSpec("windowed")
        base = Param("base")
        active = spec.state("Active", params=[base], initial=True)
        done = spec.state("Done", params=[base], final=True)
        b, a = Var("base"), Var("ack")
        spec.transition(
            "ACK", active(b), active(a + 1), inputs=("ack",), guard=a >= b
        )
        spec.transition("STOP", active(b), done(b))
        return spec.seal()

    def _transcript(self, spec, steps):
        """Run a script of (name, payload, inputs); log every observable."""
        machine = Machine(spec)
        log = []
        for name, payload, inputs in steps:
            try:
                if payload is None:
                    machine.exec_trans(name, **inputs)
                else:
                    machine.exec_trans(name, payload, **inputs)
                log.append(("ok", machine.current.name, machine.current.values))
            except InvalidTransitionError as exc:
                log.append(("err", name, str(exc)))
            log.append(
                ("avail", tuple(t.name for t in machine.available_transitions()))
            )
        log.append(("trace", tuple(s.transition for s in machine.trace)))
        return log

    def _compare_modes(self, build, steps):
        from repro.core import dispatch

        prior = dispatch.enabled()
        try:
            dispatch.set_enabled(True)
            staged = self._transcript(build(), steps)
            dispatch.set_enabled(False)
            interpreted = self._transcript(build(), steps)
        finally:
            dispatch.set_enabled(prior)
        assert staged == interpreted

    def test_sender_behaviour_identical_staged_or_not(self):
        self._compare_modes(
            sender_spec,
            [
                ("SEND", b"x", {}),
                ("OK", verified_packet(), {}),
                ("SEND", b"y", {}),
                ("FAIL", None, {}),
                ("OK", verified_packet(1), {}),  # invalid: in Ready, not Wait
                ("FINISH", None, {}),
                ("SEND", b"z", {}),  # invalid: machine finished
            ],
        )

    def test_guarded_behaviour_identical_staged_or_not(self):
        self._compare_modes(
            self._guarded_spec,
            [
                ("ACK", None, {"ack": 4}),
                ("ACK", None, {"ack": 1}),  # guard rejects: 1 < 5
                ("ACK", None, {"ack": 9}),
                ("STOP", None, {}),
            ],
        )

    def test_sealed_spec_carries_dispatch_indexes(self):
        # Satellite to the staged tier: the precomputed (state,
        # transition) indexes land at seal time even when the
        # staged-closure tier is disabled, and answer exactly like the
        # linear scans they replace.
        from repro.core import dispatch

        dispatch.set_enabled(False)
        try:
            spec = sender_spec()
        finally:
            dispatch.set_enabled(True)
        assert spec._transition_index is not None
        assert spec._source_index is not None
        for name, transition in spec._transition_index.items():
            assert spec.transition_named(name) is transition
        for state_name in spec.states:
            indexed = [t.name for t in spec.transitions_from(state_name)]
            scanned = [
                t.name
                for t in spec.transitions
                if t.source.state.name == state_name
            ]
            assert indexed == scanned

    def test_staged_table_covers_sender(self):
        from repro.core import dispatch

        prior = dispatch.enabled()
        dispatch.set_enabled(True)
        try:
            spec = sender_spec()
            table = dispatch.staged_table(spec)
            assert table is not None
            assert set(table.by_name) == {"SEND", "OK", "FAIL", "FINISH"}
            machine = Machine(spec)
            machine.exec_trans("SEND", b"x")
            machine.exec_trans("OK", verified_packet())
            # A clean run never demotes a staged closure.
            assert all(
                staged.match is not None for staged in table.by_name.values()
            )
        finally:
            dispatch.set_enabled(prior)

    def test_divergence_counter_absent_on_clean_run(self):
        from repro.core import dispatch
        from repro.obs import Instrumentation

        prior = dispatch.enabled()
        dispatch.set_enabled(True)
        try:
            instr = Instrumentation()
            machine = Machine(sender_spec(), obs=instr)
            machine.exec_trans("SEND", b"x")
            machine.exec_trans("FAIL")
            assert instr.registry.value(
                "machine.staged_divergences",
                machine="sender", transition="SEND", phase="match",
            ) == 0
            assert dispatch.stats()["tables"] >= 1
        finally:
            dispatch.set_enabled(prior)
