"""Sliding-window protocols: Go-Back-N and Selective Repeat."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import InvalidTransitionError, Machine
from repro.netsim.channel import ChannelConfig
from repro.protocols.sliding import (
    KIND_CUMULATIVE,
    SLIDING_ACK,
    SLIDING_PACKET,
    build_gbn_sender_spec,
    build_window_receiver_spec,
    run_gbn_transfer,
    run_sr_transfer,
)


def verified_ack(seq, kind=KIND_CUMULATIVE):
    return SLIDING_ACK.verify(SLIDING_ACK.make(kind=kind, seq=seq))


class TestGbnSenderMachine:
    def test_window_guard_limits_sends(self):
        machine = Machine(build_gbn_sender_spec(window=2))
        machine.exec_trans("SEND", b"a")
        machine.exec_trans("SEND", b"b")
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("SEND", b"c")

    def test_cumulative_ack_slides_base(self):
        machine = Machine(build_gbn_sender_spec(window=4))
        for payload in (b"a", b"b", b"c"):
            machine.exec_trans("SEND", payload)
        machine.exec_trans("ACK", verified_ack(1), ack=1)
        assert machine.current.values == (2, 3)

    def test_ack_guard_rejects_future_ack(self):
        machine = Machine(build_gbn_sender_spec(window=4))
        machine.exec_trans("SEND", b"a")
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("ACK", verified_ack(5), ack=5)

    def test_old_ack_does_not_move_window(self):
        machine = Machine(build_gbn_sender_spec(window=4))
        machine.exec_trans("SEND", b"a")
        machine.exec_trans("ACK", verified_ack(0), ack=0)
        machine.exec_trans("SEND", b"b")
        machine.exec_trans("ACK_OLD", verified_ack(0), ack=0)
        assert machine.current.values == (1, 2)

    def test_go_back_rewinds_next(self):
        machine = Machine(build_gbn_sender_spec(window=4))
        for payload in (b"a", b"b", b"c"):
            machine.exec_trans("SEND", payload)
        machine.exec_trans("GO_BACK")
        assert machine.current.values == (0, 0)

    def test_finish_needs_empty_window(self):
        machine = Machine(build_gbn_sender_spec(window=4))
        machine.exec_trans("SEND", b"a")
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("FINISH")
        machine.exec_trans("ACK", verified_ack(0), ack=0)
        machine.exec_trans("FINISH")
        assert machine.is_finished

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            build_gbn_sender_spec(window=0)


class TestWindowReceiverMachine:
    def test_in_order_advances(self):
        machine = Machine(build_window_receiver_spec("R1"))
        packet = SLIDING_PACKET.verify(
            SLIDING_PACKET.make(seq=0, length=1, payload=b"x")
        )
        machine.exec_trans("RECV", packet)
        assert machine.current.values == (1,)

    def test_out_of_order_does_not_advance(self):
        machine = Machine(build_window_receiver_spec("R2"))
        packet = SLIDING_PACKET.verify(
            SLIDING_PACKET.make(seq=3, length=1, payload=b"x")
        )
        machine.exec_trans("OUT_OF_ORDER", packet)
        assert machine.current.values == (0,)


class TestTransfers:
    MESSAGES = [f"payload-{i:03d}".encode() for i in range(40)]

    @pytest.mark.parametrize("run", [run_gbn_transfer, run_sr_transfer])
    def test_clean_channel(self, run):
        report = run(self.MESSAGES)
        assert report.success
        assert report.violations == []
        assert report.retransmissions == 0

    @pytest.mark.parametrize("run", [run_gbn_transfer, run_sr_transfer])
    def test_lossy_channel(self, run):
        report = run(self.MESSAGES, ChannelConfig(loss_rate=0.2), seed=6)
        assert report.success
        assert report.violations == []
        assert report.retransmissions > 0

    @pytest.mark.parametrize("run", [run_gbn_transfer, run_sr_transfer])
    def test_corrupting_reordering_channel(self, run):
        config = ChannelConfig(
            corruption_rate=0.1, reorder_rate=0.2, jitter=0.03
        )
        report = run(self.MESSAGES, config, seed=7)
        assert report.success
        assert report.violations == []

    def test_sr_retransmits_less_than_gbn_under_loss(self):
        """Selective repeat's selling point, measured."""
        config = ChannelConfig(loss_rate=0.2)
        total_gbn = 0
        total_sr = 0
        for seed in range(5):
            total_gbn += run_gbn_transfer(
                self.MESSAGES, config, window=8, seed=seed
            ).data_frames_sent
            total_sr += run_sr_transfer(
                self.MESSAGES, config, window=8, seed=seed
            ).data_frames_sent
        assert total_sr < total_gbn

    def test_larger_window_is_faster_on_clean_link(self):
        slow = run_gbn_transfer(self.MESSAGES, window=1)
        fast = run_gbn_transfer(self.MESSAGES, window=8)
        assert fast.duration < slow.duration

    @settings(deadline=None, max_examples=10)
    @given(loss=st.floats(0, 0.3), seed=st.integers(0, 500))
    def test_gbn_invariants_any_fault_pattern(self, loss, seed):
        messages = [f"m{i}".encode() for i in range(10)]
        report = run_gbn_transfer(
            messages, ChannelConfig(loss_rate=loss), seed=seed
        )
        assert report.violations == []

    @settings(deadline=None, max_examples=10)
    @given(loss=st.floats(0, 0.3), seed=st.integers(0, 500))
    def test_sr_invariants_any_fault_pattern(self, loss, seed):
        messages = [f"m{i}".encode() for i in range(10)]
        report = run_sr_transfer(
            messages, ChannelConfig(loss_rate=loss), seed=seed
        )
        assert report.violations == []
