"""Generated documentation: Markdown references and DOT diagrams."""

from repro.core.docgen import (
    document_machine_spec,
    document_packet_spec,
    machine_to_dot,
)
from repro.core.fields import Bytes, ChecksumField, Switch, UInt
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec
from repro.core.symbolic import this
from repro.protocols.arq import ARQ_PACKET, build_sender_spec
from repro.protocols.headers import IPV4_HEADER


class TestPacketDocs:
    def test_lists_every_field(self):
        text = document_packet_spec(IPV4_HEADER)
        for name in IPV4_HEADER.field_names:
            assert f"`{name}`" in text

    def test_includes_diagram(self):
        text = document_packet_spec(IPV4_HEADER)
        assert "+-+-" in text
        assert "Version" in text

    def test_lists_constraints(self):
        text = document_packet_spec(IPV4_HEADER)
        assert "header_checksum_valid" in text
        assert "ihl_at_least_5" in text

    def test_checksum_field_describes_cover(self):
        text = document_packet_spec(ARQ_PACKET)
        assert "xor8 over seq, length, payload" in text

    def test_dependent_length_shown(self):
        text = document_packet_spec(ARQ_PACKET)
        assert "bytes[this.length]" in text

    def test_irregular_layout_omits_diagram_gracefully(self):
        spec = PacketSpec(
            "Odd",
            fields=[UInt("a", bits=16), UInt("b", bits=24), UInt("c", bits=24)],
        )
        text = document_packet_spec(spec)
        assert "| `a` |" in text  # the table is still there

    def test_switch_field_documented(self):
        ping = PacketSpec("PingDoc", fields=[UInt("x", bits=8)])
        spec = PacketSpec(
            "SwitchDoc",
            fields=[
                UInt("kind", bits=8),
                Switch("body", on=this.kind, cases={0: ping}),
            ],
        )
        text = document_packet_spec(spec, include_diagram=False)
        assert "switch on this.kind" in text
        assert "0 -> PingDoc" in text


class TestMachineDocs:
    def test_states_and_markers(self):
        text = document_machine_spec(build_sender_spec())
        assert "`Ready(seq:8b)`" in text
        assert "(initial)" in text
        assert "(final)" in text

    def test_transitions_table(self):
        text = document_machine_spec(build_sender_spec())
        assert "`OK`" in text
        assert "Verified[ArqAck]" in text
        assert "`Wait(seq)` → `Ready((seq + 1))`" in text

    def test_completeness_declarations_shown(self):
        text = document_machine_spec(build_sender_spec())
        assert "Completeness declarations" in text
        assert "'good_ack'" in text or "good_ack" in text

    def test_unsealed_machines_flagged(self):
        spec = MachineSpec("draft")
        spec.state("A", initial=True, final=True)
        text = document_machine_spec(spec)
        assert "UNSEALED" in text


class TestDot:
    def test_valid_dot_structure(self):
        dot = machine_to_dot(build_sender_spec())
        assert dot.startswith('digraph "ArqSender" {')
        assert dot.rstrip().endswith("}")
        assert '"Ready" -> "Wait"' in dot

    def test_final_state_double_circle(self):
        dot = machine_to_dot(build_sender_spec())
        assert '"Sent" [label="Sent(seq)", shape=doublecircle]' in dot

    def test_initial_marker(self):
        dot = machine_to_dot(build_sender_spec())
        assert "__start" in dot
        assert '__start -> "Ready"' in dot

    def test_evidence_edges_bold(self):
        dot = machine_to_dot(build_sender_spec())
        assert "Verified ArqAck" in dot
        assert "style=bold" in dot
