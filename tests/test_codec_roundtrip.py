"""Codec engine: round trips, checksum computation, decode errors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.codec import DecodeError, ExtraDataError
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.packet import PacketSpec
from repro.core.symbolic import this

ARQ = PacketSpec(
    "Arq",
    fields=[
        UInt("seq", bits=8),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8),
        Bytes("payload", length=this.length),
    ],
)

BITPACKED = PacketSpec(
    "BitPacked",
    fields=[
        UInt("version", bits=4),
        UInt("ihl", bits=4),
        Flag("urgent"),
        Reserved("pad", bits=7),
        UInt("count", bits=16),
        UIntList("items", element_bits=8, count=this.count),
    ],
)


class TestVerbatimRoundTrip:
    def test_arq_round_trip(self):
        packet = ARQ.make(seq=9, length=5, payload=b"hello")
        assert ARQ.decode(ARQ.encode(packet)) == packet

    def test_round_trip_preserves_invalid_checksums(self):
        packet = ARQ.make(seq=9, length=5, payload=b"hello").replace(chk=0)
        wire = ARQ.encode(packet)
        assert ARQ.decode(wire) == packet  # verbatim, bit-exact

    def test_bitpacked_round_trip(self):
        packet = BITPACKED.make(
            version=4, ihl=5, urgent=True, count=3, items=[1, 2, 3]
        )
        decoded = BITPACKED.decode(BITPACKED.encode(packet))
        assert decoded.version == 4
        assert decoded.urgent is True
        assert decoded.items == (1, 2, 3)

    @given(
        seq=st.integers(0, 255),
        payload=st.binary(max_size=255),
    )
    def test_arq_round_trip_property(self, seq, payload):
        packet = ARQ.make(seq=seq, length=len(payload), payload=payload)
        assert ARQ.decode(ARQ.encode(packet)) == packet

    @given(st.lists(st.integers(0, 255), max_size=40), st.booleans())
    def test_bitpacked_round_trip_property(self, items, urgent):
        packet = BITPACKED.make(
            version=1, ihl=15, urgent=urgent, count=len(items), items=items
        )
        decoded = BITPACKED.decode(BITPACKED.encode(packet))
        assert decoded == packet


class TestChecksumComputation:
    def test_make_computes_checksum(self):
        packet = ARQ.make(seq=3, length=5, payload=b"hello")
        expected = 3 ^ 5
        for byte in b"hello":
            expected ^= byte
        assert packet.chk == expected

    def test_compute_checksum_matches_carried_value(self):
        packet = ARQ.make(seq=3, length=5, payload=b"hello")
        assert ARQ.compute_checksum(packet, "chk") == packet.chk

    def test_compute_checksum_detects_mismatch_after_tamper(self):
        packet = ARQ.make(seq=3, length=5, payload=b"hello")
        tampered = packet.replace(payload=b"jello")
        assert ARQ.compute_checksum(tampered, "chk") != tampered.chk

    def test_whole_packet_checksum_self_zeroed(self):
        # The RFC 1071 verification identity requires the checksum to sit
        # at an even (16-bit-word-aligned) offset, as it does in real
        # headers; a 5-byte packet would also break the identity via
        # padding, so the layout is an even 6 bytes.
        spec = PacketSpec(
            "WholePkt",
            fields=[
                UInt("a", bits=8),
                UInt("b", bits=8),
                ChecksumField("chk", algorithm="internet", over="*"),
                UInt("c", bits=8),
                Reserved("pad", bits=8),
            ],
        )
        packet = spec.make(a=0x12, b=0x34, c=0x56)
        wire = spec.encode(packet)
        # RFC 1071 verification: summing the full packet yields zero.
        from repro.wire.checksums import internet_checksum

        assert internet_checksum(wire) == 0


class TestDecodeErrors:
    def test_truncated_packet(self):
        with pytest.raises(DecodeError):
            ARQ.decode(b"\x01")

    def test_trailing_bytes_rejected(self):
        packet = ARQ.make(seq=1, length=2, payload=b"ab")
        with pytest.raises(ExtraDataError):
            ARQ.decode(ARQ.encode(packet) + b"\x00")

    def test_payload_shorter_than_declared(self):
        packet = ARQ.make(seq=1, length=2, payload=b"ab")
        with pytest.raises(DecodeError):
            ARQ.decode(ARQ.encode(packet)[:-1])

    def test_wrong_spec_for_encode(self):
        packet = ARQ.make(seq=1, length=0, payload=b"")
        with pytest.raises(Exception, match="cannot encode"):
            BITPACKED.encode(packet)


class TestNestedStructures:
    def test_struct_round_trip(self):
        inner = PacketSpec(
            "Inner", fields=[UInt("x", bits=8), UInt("y", bits=8)]
        )
        outer = PacketSpec(
            "Outer",
            fields=[UInt("tag", bits=8), Struct("pair", inner)],
        )
        packet = outer.make(tag=1, pair=inner.make(x=2, y=3))
        decoded = outer.decode(outer.encode(packet))
        assert decoded.pair.x == 2 and decoded.pair.y == 3

    def test_switch_selects_branch(self):
        ping = PacketSpec("Ping", fields=[UInt("token", bits=16)])
        data = PacketSpec("Data", fields=[Bytes("body")])
        message = PacketSpec(
            "Message",
            fields=[
                UInt("kind", bits=8),
                Switch("content", on=this.kind, cases={0: ping, 1: data}),
            ],
        )
        p = message.make(kind=0, content=ping.make(token=7))
        assert message.decode(message.encode(p)).content.token == 7
        d = message.make(kind=1, content=data.make(body=b"xyz"))
        assert message.decode(message.encode(d)).content.body == b"xyz"

    def test_switch_unknown_discriminator(self):
        ping = PacketSpec("Ping2", fields=[UInt("token", bits=16)])
        message = PacketSpec(
            "Message2",
            fields=[
                UInt("kind", bits=8),
                Switch("content", on=this.kind, cases={0: ping}),
            ],
        )
        with pytest.raises(Exception, match="no case"):
            message.decode(b"\x09\x00\x07")

    def test_switch_wrong_branch_value_rejected(self):
        ping = PacketSpec("Ping3", fields=[UInt("token", bits=16)])
        pong = PacketSpec("Pong3", fields=[UInt("token", bits=16)])
        message = PacketSpec(
            "Message3",
            fields=[
                UInt("kind", bits=8),
                Switch("content", on=this.kind, cases={0: ping, 1: pong}),
            ],
        )
        with pytest.raises(Exception, match="expected a"):
            message.make(kind=0, content=pong.make(token=1))
