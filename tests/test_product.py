"""LTS composition and the compositional ARQ verification."""

import pytest

from repro.modelcheck.product import (
    CompositionError,
    Lts,
    ProductExplosionError,
    compose,
)
from repro.modelcheck.arq_model import (
    build_channel_lts,
    build_receiver_lts,
    build_sender_lts,
    is_success,
    verify_arq_system,
)


def toggler(name, labels=("flip",)):
    def edges(state):
        for label in labels:
            yield label, not state

    return Lts(name, False, edges, frozenset(labels))


class TestComposeBasics:
    def test_interleaving_of_disjoint_alphabets(self):
        a = toggler("a", ("flip_a",))
        b = toggler("b", ("flip_b",))
        result = compose([a, b])
        assert result.states_visited == 4  # full interleaving
        assert result.deadlocks == []

    def test_shared_label_synchronizes(self):
        a = toggler("a", ("flip",))
        b = toggler("b", ("flip",))
        result = compose([a, b])
        # They flip together: only (F,F) and (T,T) are reachable.
        assert result.states_visited == 2

    def test_blocking_participant_disables_label(self):
        def only_from_false(state):
            if state is False:
                yield "flip", True

        a = Lts("a", False, only_from_false, frozenset({"flip"}))
        b = toggler("b", ("flip",))
        result = compose([a, b])
        # After one synchronized flip, a (now True) blocks the label.
        assert result.states_visited == 2
        assert len(result.deadlocks) == 1

    def test_label_outside_alphabet_rejected(self):
        def edges(state):
            yield "rogue", state

        bad = Lts("bad", 0, edges, frozenset({"declared"}))
        with pytest.raises(CompositionError, match="outside its declared"):
            compose([bad])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CompositionError, match="unique"):
            compose([toggler("x"), toggler("x")])

    def test_empty_composition_rejected(self):
        with pytest.raises(CompositionError):
            compose([])

    def test_explosion_budget(self):
        def counter(state):
            yield "inc", state + 1

        unbounded = Lts("n", 0, counter, frozenset({"inc"}))
        with pytest.raises(ProductExplosionError):
            compose([unbounded], max_states=100)

    def test_path_to_reconstructs_labels(self):
        a = toggler("a", ("flip_a",))
        b = toggler("b", ("flip_b",))
        result = compose([a, b])
        target = (True, True)
        path = result.path_to(target)
        assert sorted(path) == ["flip_a", "flip_b"]

    def test_nondeterministic_choices_all_explored(self):
        def branchy(state):
            if state == 0:
                yield "go", 1
                yield "go", 2

        lts = Lts("branchy", 0, branchy, frozenset({"go"}))
        result = compose([lts])
        assert result.states_visited == 3


class TestArqComposition:
    def test_correct_system_verifies(self):
        report = verify_arq_system(modulus=4, messages=3)
        assert report.ok
        assert report.success_states >= 1
        assert report.states > 50  # a real state space, not a toy

    def test_only_deadlocks_are_success(self):
        report = verify_arq_system(modulus=4, messages=2)
        assert report.bad_deadlocks == []

    def test_safety_receiver_at_most_one_ahead(self):
        report = verify_arq_system(modulus=4, messages=3)
        assert report.safety_violations == []

    def test_progress_always_possible(self):
        report = verify_arq_system(modulus=4, messages=3)
        assert report.stuck_states == []

    def test_broken_receiver_is_caught(self):
        """The no-dup-ack bug: success becomes unreachable after a lost
        ack, and the composition checker finds those states."""
        report = verify_arq_system(modulus=4, messages=3, broken_receiver=True)
        assert not report.ok
        assert report.stuck_states  # the livelock configurations

    def test_message_count_must_fit_sequence_window(self):
        with pytest.raises(ValueError, match="modulus"):
            verify_arq_system(modulus=2, messages=3)

    def test_scaling_with_messages(self):
        small = verify_arq_system(modulus=4, messages=1)
        large = verify_arq_system(modulus=8, messages=5)
        assert large.states > small.states
        assert large.ok and small.ok


class TestSenderLtsAgreesWithMachineSpec:
    """Close the transcription gap: every sender-LTS edge replays on the
    real DSL machine (paper §3.3 limitation 2, addressed head-on)."""

    def test_every_lts_edge_is_a_legal_machine_run(self):
        from repro.core.machine import Machine
        from repro.protocols.arq import ACK_PACKET, build_sender_spec

        modulus, messages = 4, 3
        lts = build_sender_lts(modulus, messages)
        spec = build_sender_spec(max_seq_bits=2)  # 2 bits -> modulus 4
        label_to_transitions = {
            "put_data": ["SEND"],
            "get_ack": None,  # OK or FAIL depending on the ack value
            "timeout": ["TIMEOUT"],
            "retry": ["RETRY"],
            "finish": ["FINISH"],
        }
        # Walk every LTS state (bounded enumeration) and replay each edge.
        seen = {lts.initial}
        frontier = [lts.initial]
        while frontier:
            state = frontier.pop()
            for label, target in lts.edges(state):
                self._replay(spec, state, label, target, modulus)
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        assert len(seen) > 10

    @staticmethod
    def _replay(spec, state, label, target, modulus):
        from repro.core.machine import Machine
        from repro.protocols.arq import ACK_PACKET

        mode = state[0]
        if mode == "Sent":
            raise AssertionError("Sent must have no outgoing edges")
        machine = Machine(spec, initial=spec.states[mode].instance(state[1]))
        kind = label[0]
        if kind == "put_data":
            machine.exec_trans("SEND", b"x")
        elif kind == "get_ack":
            ack = ACK_PACKET.verify(ACK_PACKET.make(seq=label[1]))
            if label[1] == state[1]:
                machine.exec_trans("OK", ack)
            else:
                machine.exec_trans("FAIL")
        elif kind == "timeout":
            machine.exec_trans("TIMEOUT")
        elif kind == "retry":
            machine.exec_trans("RETRY")
        elif kind == "finish":
            machine.exec_trans("FINISH")
        else:
            raise AssertionError(f"unexpected label {label!r}")
        assert machine.current.state.name == target[0]
        if target[0] != "Sent":
            assert machine.current.values == (target[1] % modulus,)
