"""Bulk bit arithmetic vs. the old per-bit loop semantics.

This PR replaced the per-bit loops in ``wire.bits`` and the codec's
``_extract_bits``/``_patch_bits`` with bulk ``int.from_bytes``/shift-mask
arithmetic.  These tests pin the bulk paths to reference per-bit
implementations (written out here, mirroring the replaced loops) across
misaligned offsets, odd widths, and ``ByteOrder.LITTLE`` spans — exactly
the cases where an off-by-one in a shift silently corrupts wire bytes.
"""

import random

import pytest

from repro.core.codec import _extract_bits, _patch_bits
from repro.wire.bits import BitReader, BitWriter, ByteOrder, TruncatedDataError


# --- reference per-bit implementations (the replaced loop semantics) ---


def ref_write_uint(buffer: bytearray, bit_length: int, value: int, bits: int) -> int:
    """Append ``bits`` bits of ``value`` one bit at a time; returns new length."""
    for position in range(bits - 1, -1, -1):
        bit = (value >> position) & 1
        if bit_length % 8 == 0:
            buffer.append(0)
        buffer[bit_length // 8] |= bit << (7 - bit_length % 8)
        bit_length += 1
    return bit_length


def ref_read_uint(data: bytes, cursor: int, bits: int) -> int:
    """Read ``bits`` bits starting at ``cursor``, one bit at a time."""
    value = 0
    for offset in range(bits):
        position = cursor + offset
        bit = (data[position // 8] >> (7 - position % 8)) & 1
        value = (value << 1) | bit
    return value


def ref_patch_bits(buffer: bytearray, start_bit: int, width: int, value: int) -> None:
    """Overwrite ``width`` bits at ``start_bit``, one bit at a time."""
    for offset in range(width):
        position = start_bit + offset
        bit = (value >> (width - 1 - offset)) & 1
        index, shift = position // 8, 7 - position % 8
        buffer[index] = (buffer[index] & ~(1 << shift)) | (bit << shift)


# --- BitWriter ---


@pytest.mark.parametrize("prefix_bits", [0, 1, 3, 5, 7, 9, 13])
@pytest.mark.parametrize("width", [1, 2, 3, 7, 8, 9, 12, 16, 24, 31, 33, 64])
def test_writer_matches_per_bit_reference(prefix_bits, width):
    rng = random.Random(prefix_bits * 100 + width)
    prefix = rng.getrandbits(prefix_bits) if prefix_bits else 0
    value = rng.getrandbits(width)

    writer = BitWriter()
    if prefix_bits:
        writer.write_uint(prefix, prefix_bits)
    writer.write_uint(value, width)

    reference = bytearray()
    length = ref_write_uint(reference, 0, prefix, prefix_bits) if prefix_bits else 0
    length = ref_write_uint(reference, length, value, width)

    assert writer.bit_length == length
    assert writer.getvalue() == bytes(reference)


def test_writer_random_sequences_match_reference():
    rng = random.Random(0xB175)
    for _ in range(200):
        writer = BitWriter()
        reference = bytearray()
        length = 0
        for _ in range(rng.randrange(1, 12)):
            width = rng.randrange(1, 40)
            value = rng.getrandbits(width)
            writer.write_uint(value, width)
            length = ref_write_uint(reference, length, value, width)
        assert writer.getvalue() == bytes(reference)
        assert writer.bit_length == length


def test_writer_little_endian_matches_to_bytes():
    writer = BitWriter()
    writer.write_uint(0x1234, 16, ByteOrder.LITTLE)
    writer.write_uint(0xDEADBEEF, 32, ByteOrder.LITTLE)
    assert writer.getvalue() == b"\x34\x12" + (0xDEADBEEF).to_bytes(4, "little")


def test_writer_little_endian_rejects_odd_widths():
    writer = BitWriter()
    with pytest.raises(ValueError, match="whole bytes"):
        writer.write_uint(1, 12, ByteOrder.LITTLE)


def test_writer_bounds_checks_survive_bulk_path():
    writer = BitWriter()
    with pytest.raises(ValueError, match="does not fit"):
        writer.write_uint(16, 4)
    with pytest.raises(ValueError, match="negative"):
        writer.write_uint(-1, 4)
    with pytest.raises(ValueError, match="positive"):
        writer.write_uint(0, 0)


# --- BitReader ---


@pytest.mark.parametrize("offset_bits", [0, 1, 3, 5, 7, 9, 13])
@pytest.mark.parametrize("width", [1, 2, 3, 7, 8, 9, 12, 16, 24, 31, 33, 64])
def test_reader_matches_per_bit_reference(offset_bits, width):
    rng = random.Random(offset_bits * 100 + width + 1)
    data = bytes(rng.randrange(256) for _ in range((offset_bits + width + 7) // 8 + 2))
    reader = BitReader(data)
    if offset_bits:
        reader.read_uint(offset_bits)
    assert reader.read_uint(width) == ref_read_uint(data, offset_bits, width)
    assert reader.bits_consumed == offset_bits + width


def test_reader_roundtrips_writer_at_odd_offsets():
    rng = random.Random(0xB17E)
    for _ in range(100):
        fields = [
            (rng.getrandbits(width), width)
            for width in (rng.randrange(1, 40) for _ in range(rng.randrange(1, 10)))
        ]
        writer = BitWriter()
        for value, width in fields:
            writer.write_uint(value, width)
        writer.pad_to_byte()
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_uint(width) == value


def test_reader_little_endian_span():
    data = b"\x34\x12" + (0xDEADBEEF).to_bytes(4, "little")
    reader = BitReader(data)
    assert reader.read_uint(16, ByteOrder.LITTLE) == 0x1234
    assert reader.read_uint(32, ByteOrder.LITTLE) == 0xDEADBEEF
    assert reader.at_end


def test_reader_little_endian_rejects_odd_widths():
    reader = BitReader(b"\xff\xff")
    with pytest.raises(ValueError, match="whole bytes"):
        reader.read_uint(12, ByteOrder.LITTLE)


def test_reader_truncation_at_misaligned_cursor():
    reader = BitReader(b"\xab")
    reader.read_uint(5)
    with pytest.raises(TruncatedDataError):
        reader.read_uint(4)
    assert reader.read_uint(3) == 0xAB & 0x7


# --- codec._extract_bits / _patch_bits ---


@pytest.mark.parametrize("start_bit", [0, 1, 3, 4, 7, 8, 11, 15])
@pytest.mark.parametrize("width", [8, 16, 24, 32, 40])
def test_extract_bits_matches_reference(start_bit, width):
    rng = random.Random(start_bit * 1000 + width)
    buffer = bytes(rng.randrange(256) for _ in range((start_bit + width + 7) // 8 + 1))
    extracted = _extract_bits(buffer, start_bit, start_bit + width)
    assert extracted == ref_read_uint(buffer, start_bit, width).to_bytes(
        width // 8, "big"
    )


def test_extract_bits_rejects_non_byte_widths_and_overruns():
    with pytest.raises(ValueError, match="whole number of bytes"):
        _extract_bits(b"\xff\xff", 0, 12)
    with pytest.raises(ValueError, match="past the end"):
        _extract_bits(b"\xff\xff", 8, 24)


@pytest.mark.parametrize("start_bit", [0, 1, 3, 5, 7, 9, 12, 15])
@pytest.mark.parametrize("width", [1, 3, 5, 8, 11, 16, 19, 32])
def test_patch_bits_matches_reference(start_bit, width):
    rng = random.Random(start_bit * 1000 + width + 7)
    size = (start_bit + width + 7) // 8 + 1
    original = bytes(rng.randrange(256) for _ in range(size))
    value = rng.getrandbits(width)

    bulk = bytearray(original)
    _patch_bits(bulk, start_bit, width, value)
    reference = bytearray(original)
    ref_patch_bits(reference, start_bit, width, value)

    assert bytes(bulk) == bytes(reference)
    # neighbouring bits are untouched
    assert ref_read_uint(bytes(bulk), start_bit, width) == value


def test_patch_bits_zero_width_is_noop():
    buffer = bytearray(b"\xaa\xbb")
    _patch_bits(buffer, 4, 0, 0xF)
    assert bytes(buffer) == b"\xaa\xbb"


def test_patch_then_extract_roundtrip_misaligned():
    rng = random.Random(0xC0DEC)
    for _ in range(100):
        size = rng.randrange(3, 12)
        buffer = bytearray(rng.randrange(256) for _ in range(size))
        width = 8 * rng.randrange(1, size)
        start = rng.randrange(0, size * 8 - width + 1)
        value = rng.getrandbits(width)
        _patch_bits(buffer, start, width, value)
        assert _extract_bits(bytes(buffer), start, start + width) == value.to_bytes(
            width // 8, "big"
        )
