"""Tests for repro.conformance: the engines catch what they claim to catch.

Three kinds of test:

* positive — every engine runs green over the real in-tree specs and
  machines, deterministically in the seed;
* negative (fault injection) — a deliberately corrupted codec field, a
  corrupted baseline encoder, and a tampered machine transition must each
  produce a shrunk, replayable counterexample;
* unit — shrinkers, coverage accounting, corpus round-trips, CLI.
"""

import random

import pytest

import repro.conformance.differential as differential_module
from repro.conformance import (
    Corpus,
    CorpusEntry,
    CoverageMap,
    DifferentialEngine,
    MachineConformance,
    MutationFuzzer,
    classify,
    all_machine_entries,
    all_spec_entries,
    run_all,
    shrink_bytes,
    shrink_sequence,
)
from repro.conformance.machineconf import decode_ops, encode_ops
from repro.conformance.mutate import ACCEPT, BUG_NONVERBATIM
from repro.conformance.registry import SpecEntry
from repro.conformance.runner import replay_corpus
from repro.core.fields import Bytes, UInt
from repro.core.packet import PacketSpec
from repro.core.symbolic import Var, this
from repro.protocols.arq import build_sender_spec
from repro.testing import random_packet


# -- shrinkers ----------------------------------------------------------


class TestShrinkers:
    def test_shrink_bytes_finds_minimal_witness(self):
        data = bytes(range(1, 40)) + b"\x42" + bytes(range(50, 90))
        shrunk = shrink_bytes(data, lambda d: 0x42 in d)
        assert shrunk == b"\x42"

    def test_shrink_bytes_returns_original_when_nothing_smaller_fails(self):
        data = b"\x01\x02\x03"
        assert shrink_bytes(data, lambda d: d == data) == data

    def test_shrink_bytes_result_always_fails(self):
        predicate = lambda d: len(d) >= 3 and d[0] > 10
        shrunk = shrink_bytes(bytes(range(11, 30)), predicate)
        assert predicate(shrunk)
        assert len(shrunk) == 3

    def test_shrink_sequence_finds_minimal_subsequence(self):
        items = list("abcXdefXg")
        shrunk = shrink_sequence(items, lambda s: s.count("X") >= 2)
        assert shrunk == ["X", "X"]

    def test_shrink_budget_is_respected(self):
        calls = []

        def predicate(d):
            calls.append(1)
            return True

        shrink_bytes(bytes(100), predicate, max_evaluations=17)
        assert len(calls) <= 17


# -- coverage -----------------------------------------------------------


class TestCoverage:
    def test_first_observation_is_new_coverage(self):
        coverage = CoverageMap()
        assert coverage.record_error_path("S", "BadChecksum") is True
        assert coverage.record_error_path("S", "BadChecksum") is False
        assert coverage.record_error_path("S", "Truncated") is True
        assert coverage.hits("conformance.error_paths", spec="S", path="BadChecksum") == 2

    def test_pick_prefers_uncovered_candidates(self):
        coverage = CoverageMap()
        rng = random.Random(0)
        for _ in range(50):
            coverage.record_field_mutation("S", "hot")
        picks = [
            coverage.pick(
                rng,
                ["hot", "cold"],
                key=lambda c: ("conformance.field_mutations", {"spec": "S", "field": c}),
            )
            for _ in range(200)
        ]
        assert picks.count("cold") > picks.count("hot")

    def test_summary_is_json_ready(self):
        coverage = CoverageMap()
        coverage.record_outcome("fuzz", "S", "accept")
        summary = coverage.summary()
        assert summary["conformance.outcomes"] == {"points": 1, "hits": 1}


# -- corpus -------------------------------------------------------------


class TestCorpus:
    def test_entry_json_roundtrip(self):
        entry = CorpusEntry(
            engine="fuzz",
            subject="ArqData",
            outcome="bug_crash",
            data=b"\x00\xff",
            shrunk=b"\xff",
            seed=7,
            detail="decode raised X",
            meta={"k": "v"},
        )
        assert CorpusEntry.from_json(entry.to_json()) == entry
        assert entry.reproducer() == b"\xff"

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        corpus = Corpus(path)
        corpus.add(CorpusEntry("fuzz", "S", "interesting:accept", b"ab"))
        corpus.add(CorpusEntry("fuzz", "S", "bug_crash", b"cd", shrunk=b"c"))
        corpus.save()
        reloaded = Corpus(path)
        assert len(reloaded) == 2
        assert len(reloaded.failures()) == 1
        assert reloaded.by_subject("S")[0].data == b"ab"


# -- the fuzzer, positive and negative ----------------------------------


def _spec_entry(name):
    return next(e for e in all_spec_entries() if e.name == name)


class TestMutationFuzzer:
    def test_all_registry_specs_have_working_generators(self):
        rng = random.Random(0)
        for entry in all_spec_entries():
            packet = entry.generate(rng)
            wire = entry.spec.encode(packet)
            assert classify(entry.spec, wire)[0] == ACCEPT

    def test_clean_specs_produce_no_findings(self):
        coverage = CoverageMap()
        for name in ("ArqData", "Ipv4Header"):
            entry = _spec_entry(name)
            fuzzer = MutationFuzzer(entry, random.Random(1), coverage)
            assert fuzzer.run(150) == []

    def test_corrupted_field_decode_yields_shrunk_replayable_counterexample(self):
        """The acceptance check: corrupt one codec field and the fuzzer
        must hand back a minimized reproducer that still demonstrates the
        bug on replay."""

        class LyingUInt(UInt):
            # Deliberate corruption: values above 7 decode with bit 0
            # flipped, so a verified packet no longer re-encodes verbatim.
            def decode(self, reader, env):
                value = super().decode(reader, env)
                return value ^ 1 if value > 7 else value

        broken = PacketSpec(
            "BrokenDemo",
            fields=[
                LyingUInt("seq", bits=8),
                UInt("length", bits=8),
                Bytes("payload", length=this.length),
            ],
        )
        entry = SpecEntry(broken, lambda rng: random_packet(broken, rng))
        coverage = CoverageMap()
        corpus = Corpus()
        fuzzer = MutationFuzzer(
            entry, random.Random(0), coverage, corpus=corpus, seed=0
        )
        findings = fuzzer.run(300)
        nonverbatim = [f for f in findings if f.outcome == BUG_NONVERBATIM]
        assert nonverbatim, "corrupted decoder was not detected"
        finding = nonverbatim[0]
        # Shrunk, and the shrunk reproducer still fails the same way.
        assert len(finding.shrunk) <= len(finding.data)
        assert classify(broken, finding.shrunk)[0] == BUG_NONVERBATIM
        # ...and it was persisted to the corpus in replayable form.
        persisted = [e for e in corpus.failures() if e.subject == "BrokenDemo"]
        assert persisted
        assert classify(broken, persisted[0].reproducer())[0] == BUG_NONVERBATIM


# -- differential, positive and negative --------------------------------


class TestDifferential:
    def test_oracles_agree_on_clean_tree(self):
        engine = DifferentialEngine(random.Random(0), CoverageMap())
        assert engine.run(200) == []

    def test_corrupted_baseline_encoder_is_flagged(self, monkeypatch):
        real = differential_module.pack_data

        def corrupted(seq, payload):
            frame = bytearray(real(seq, payload))
            frame[-1] ^= 0x01 if frame else 0
            return bytes(frame)

        monkeypatch.setattr(differential_module, "pack_data", corrupted)
        engine = DifferentialEngine(random.Random(0), CoverageMap())
        findings = engine.run_arq(10)
        assert findings
        assert findings[0].subject == "ArqData"
        assert "disagree" in findings[0].detail

    def test_asn1_der_per_agree(self):
        engine = DifferentialEngine(random.Random(2), CoverageMap())
        assert engine.run_asn1(100) == []


# -- machine conformance, positive and negative -------------------------


def _machine_entry(name):
    return next(e for e in all_machine_entries() if e.name == name)


def _tampered_sender_spec():
    """An ARQ sender whose OK transition skips a sequence number —
    the runtime drifts from the spec the model was built from."""
    spec = build_sender_spec(max_seq_bits=4)
    ready = spec.states["Ready"]
    n = Var("seq")
    spec.transition_named("OK").target = ready(n + 2)
    return spec


class TestMachineConformance:
    def test_every_machine_conforms_to_its_model(self):
        coverage = CoverageMap()
        for entry in all_machine_entries():
            conformance = MachineConformance(entry, random.Random(4), coverage)
            assert conformance.run(120) == [], entry.name

    def test_tampered_transition_target_is_caught_shrunk_and_replayable(self):
        entry = _machine_entry("ArqSender")
        corpus = Corpus()
        conformance = MachineConformance(
            entry,
            random.Random(3),
            CoverageMap(),
            corpus=corpus,
            seed=3,
            runtime_build=_tampered_sender_spec,
        )
        findings = conformance.run(200)
        assert findings, "tampered OK target was not detected"
        finding = findings[0]
        assert finding.outcome == "bug_divergence"
        assert "OK" in finding.detail
        # The shrunk event sequence decodes and still diverges on replay.
        ops = decode_ops(finding.shrunk)
        assert len(ops) <= len(decode_ops(finding.data))
        assert conformance._replay_diverges(ops) is not None
        # Persisted for the regression gate.
        assert corpus.failures()

    def test_event_sequences_roundtrip_through_the_corpus_encoding(self):
        entry = _machine_entry("ArqSender")
        conformance = MachineConformance(entry, random.Random(9), CoverageMap())
        from repro.core.machine import Machine

        machine = Machine(entry.build())
        rng = random.Random(9)
        ops = []
        for transition in machine.spec.transitions:
            payload, inputs = entry.arm(transition, machine, rng)
            ops.append((transition.name, payload, inputs))
        decoded = decode_ops(encode_ops(ops))
        assert [(n, i) for n, _, i in decoded] == [(n, i) for n, _, i in ops]


# -- the runner and CLI --------------------------------------------------


class TestRunner:
    def test_small_full_run_is_green(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        report = run_all(seed=0, budget=120, corpus_path=path)
        assert report.ok, report.render()
        assert {e.engine for e in report.engines} == {
            "fuzz",
            "differential",
            "machine",
        }
        assert report.coverage["conformance.transitions_fired"]["points"] > 0
        # Everything persisted replays without drift.
        checked, drifts = replay_corpus(path)
        assert checked == len(Corpus(path))
        assert drifts == []

    def test_same_seed_reproduces_the_same_run(self):
        first = run_all(seed=5, budget=60, engines=("fuzz",), specs=("ArqData",))
        second = run_all(seed=5, budget=60, engines=("fuzz",), specs=("ArqData",))
        assert first.to_json() == second.to_json()

    def test_cli_green_run_and_replay(self, tmp_path, capsys):
        from repro.conformance.__main__ import main

        corpus = str(tmp_path / "c.jsonl")
        assert (
            main(
                [
                    "--seed",
                    "0",
                    "--budget",
                    "60",
                    "--engines",
                    "fuzz",
                    "--specs",
                    "ArqAck",
                    "--corpus",
                    corpus,
                ]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out
        assert main(["--replay", corpus]) == 0
        assert "replayed" in capsys.readouterr().out


@pytest.mark.fuzz
class TestAcceptanceBudget:
    """The ISSUE acceptance command, at a CI-sized budget (the nightly
    lane runs the full 2000+ per engine)."""

    def test_all_engines_green_on_every_subject(self):
        report = run_all(seed=0, budget=400)
        assert report.ok, report.render()
