"""The DTMC analyzer and the analytic stop-and-wait model."""

import pytest

from repro.modelcheck.markov import (
    MarkovChain,
    MarkovError,
    expected_transmissions_per_message,
    stop_and_wait_chain,
    stop_and_wait_start,
)


class TestMarkovChain:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(MarkovError, match="sum"):
            MarkovChain({"a": [(0.5, "b")]})

    def test_negative_probability_rejected(self):
        with pytest.raises(MarkovError, match="negative"):
            MarkovChain({"a": [(-0.1, "b"), (1.1, "b")]})

    def test_needs_absorbing_state(self):
        with pytest.raises(MarkovError, match="absorbing"):
            MarkovChain({"a": [(1.0, "b")], "b": [(1.0, "a")]})

    def test_fair_coin_expected_steps(self):
        """Keep flipping until heads: geometric with mean 2."""
        chain = MarkovChain({"flip": [(0.5, "heads"), (0.5, "flip")]})
        assert chain.expected_steps_to_absorption("flip") == pytest.approx(2.0)

    def test_absorption_probabilities_split(self):
        chain = MarkovChain(
            {"s": [(0.3, "win"), (0.2, "lose"), (0.5, "s")]}
        )
        probs = chain.absorption_probabilities("s")
        assert probs[("win",) if ("win",) in probs else "win"] == pytest.approx(0.6)
        assert probs["lose"] == pytest.approx(0.4)

    def test_from_absorbing_state(self):
        chain = MarkovChain({"s": [(1.0, "done")]})
        assert chain.expected_steps_to_absorption("done") == 0.0
        assert chain.absorption_probabilities("done") == {"done": 1.0}

    def test_expected_visits(self):
        chain = MarkovChain({"s": [(0.5, "done"), (0.5, "s")]})
        assert chain.expected_visits("s", "s") == pytest.approx(2.0)

    def test_gamblers_ruin(self):
        """A 3-point random walk: classic closed-form check."""
        p = 0.5
        chain = MarkovChain(
            {
                1: [(p, 2), (1 - p, 0)],
                2: [(p, 3), (1 - p, 1)],
            }
        )
        probs = chain.absorption_probabilities(1)
        assert probs[3] == pytest.approx(1 / 3)
        assert probs[0] == pytest.approx(2 / 3)


class TestStopAndWaitChain:
    def test_expected_rounds_matches_closed_form(self):
        for loss_data, loss_ack in ((0.0, 0.0), (0.2, 0.1), (0.5, 0.5)):
            chain = stop_and_wait_chain(loss_data, loss_ack, messages=7)
            expected = chain.expected_steps_to_absorption(stop_and_wait_start())
            closed_form = 7 * expected_transmissions_per_message(loss_data, loss_ack)
            assert expected == pytest.approx(closed_form)

    def test_lossless_channel_needs_one_round_each(self):
        chain = stop_and_wait_chain(0.0, 0.0, messages=5)
        assert chain.expected_steps_to_absorption(
            stop_and_wait_start()
        ) == pytest.approx(5.0)

    def test_bounded_retries_can_fail(self):
        chain = stop_and_wait_chain(0.5, 0.0, messages=2, max_retries=3)
        probs = chain.absorption_probabilities(stop_and_wait_start(max_retries=3))
        per_message_failure = 0.5 ** 4  # all four attempts lost
        expected_success = (1 - per_message_failure) ** 2
        assert probs[("done",)] == pytest.approx(expected_success)
        assert probs[("failed",)] == pytest.approx(1 - expected_success)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MarkovError):
            stop_and_wait_chain(1.0, 0.0, messages=1)
        with pytest.raises(MarkovError):
            stop_and_wait_chain(0.1, 0.1, messages=0)

    def test_analytic_agrees_with_simulator(self):
        """The PRISM-style cross-check: DTMC prediction vs netsim
        measurement of transmissions per message."""
        from repro.netsim.channel import ChannelConfig
        from repro.protocols.arq import run_transfer

        loss = 0.25
        messages = [bytes([i]) for i in range(60)]
        # The duplex link loses in BOTH directions: data and acks.
        analytic = expected_transmissions_per_message(loss, loss)
        measured = 0.0
        seeds = range(6)
        for seed in seeds:
            report = run_transfer(
                messages, ChannelConfig(loss_rate=loss), seed=seed,
                max_retries=300,
            )
            assert report.success
            measured += report.data_frames_sent / len(messages)
        measured /= len(seeds)
        assert measured == pytest.approx(analytic, rel=0.15)
