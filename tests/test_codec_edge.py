"""Edge paths of the codec and field system: endianness, defaults,
misaligned regions, switch defaults, greedy nesting."""

import pytest

from repro.core.codec import DecodeError
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.packet import PacketSpec, SpecError
from repro.core.symbolic import this
from repro.wire.bits import ByteOrder


class TestLittleEndian:
    SPEC = PacketSpec(
        "LeSpec",
        fields=[
            UInt("le16", bits=16, byteorder=ByteOrder.LITTLE),
            UInt("le32", bits=32, byteorder=ByteOrder.LITTLE),
            UInt("be16", bits=16),
        ],
    )

    def test_wire_layout(self):
        packet = self.SPEC.make(le16=0x1234, le32=0xAABBCCDD, be16=0x1234)
        wire = self.SPEC.encode(packet)
        assert wire == bytes.fromhex("3412" "ddccbbaa" "1234")

    def test_round_trip(self):
        packet = self.SPEC.make(le16=0xFFFE, le32=1, be16=0)
        assert self.SPEC.decode(self.SPEC.encode(packet)) == packet

    def test_codegen_handles_little_endian(self):
        from repro.core.compile import compile_spec

        compiled = compile_spec(self.SPEC)
        packet = self.SPEC.make(le16=0x1234, le32=0xAABBCCDD, be16=0x5678)
        wire = self.SPEC.encode(packet)
        assert compiled.build(packet.values) == wire
        assert compiled.parse(wire) == packet.values


class TestSwitchDefault:
    PING = PacketSpec("PingE", fields=[UInt("token", bits=16)])
    RAW = PacketSpec("RawE", fields=[Bytes("blob")])
    MESSAGE = PacketSpec(
        "MessageE",
        fields=[
            UInt("kind", bits=8),
            Switch("content", on=this.kind, cases={0: PING}, default=RAW),
        ],
    )

    def test_default_branch_taken_for_unknown_kind(self):
        packet = self.MESSAGE.make(kind=9, content=self.RAW.make(blob=b"xyz"))
        decoded = self.MESSAGE.decode(self.MESSAGE.encode(packet))
        assert decoded.content.blob == b"xyz"

    def test_known_kind_still_uses_case(self):
        packet = self.MESSAGE.make(kind=0, content=self.PING.make(token=5))
        decoded = self.MESSAGE.decode(self.MESSAGE.encode(packet))
        assert decoded.content.token == 5

    def test_empty_cases_rejected(self):
        with pytest.raises(ValueError, match="at least one case"):
            Switch("s", on=this.kind, cases={})


class TestStructEdge:
    def test_variable_size_nested_spec_must_be_last(self):
        inner = PacketSpec("InnerVar", fields=[Bytes("rest")])
        with pytest.raises(SpecError, match="must be last"):
            PacketSpec(
                "OuterBad",
                fields=[Struct("inner", inner), UInt("after", bits=8)],
            )

    def test_variable_size_nested_spec_as_last_field(self):
        inner = PacketSpec("InnerVar2", fields=[Bytes("rest")])
        outer = PacketSpec(
            "OuterOk", fields=[UInt("tag", bits=8), Switch("x", on=this.tag, cases={0: inner})]
        )
        packet = outer.make(tag=0, x=inner.make(rest=b"abc"))
        assert outer.decode(outer.encode(packet)).x.rest == b"abc"

    def test_wrong_spec_value_rejected(self):
        inner = PacketSpec("InnerA", fields=[UInt("x", bits=8)])
        other = PacketSpec("InnerB", fields=[UInt("x", bits=8)])
        outer = PacketSpec("OuterC", fields=[Struct("inner", inner)])
        with pytest.raises(Exception, match="expected a InnerA"):
            outer.make(inner=other.make(x=1))


class TestMisalignedChecksumInterpreter:
    """The interpreter (unlike the code generator) handles checksums over
    fields that start mid-byte, by bit-extracting the cover."""

    SPEC = PacketSpec(
        "Misaligned",
        fields=[
            UInt("nibble", bits=4),
            UInt("covered", bits=8),  # starts at bit 4
            Reserved("pad", bits=4),
            ChecksumField("chk", algorithm="xor8", over=("covered",)),
        ],
    )

    def test_checksum_over_misaligned_field(self):
        packet = self.SPEC.make(nibble=0xF, covered=0xAB)
        assert packet.chk == 0xAB
        verified = self.SPEC.parse(self.SPEC.encode(packet))
        assert verified.value.covered == 0xAB

    def test_corruption_of_misaligned_cover_detected(self):
        packet = self.SPEC.make(nibble=0x0, covered=0x55)
        wire = bytearray(self.SPEC.encode(packet))
        wire[0] ^= 0x08  # flips a bit inside 'covered' (bits 4..11)
        assert self.SPEC.try_parse(bytes(wire)) is None


class TestUIntListSubByte:
    SPEC = PacketSpec(
        "Nibbles",
        fields=[
            UInt("count", bits=8),
            UIntList("values", element_bits=4, count=this.count),
            # count must be even for byte alignment; tests use even counts.
        ],
    )

    def test_nibble_packing(self):
        packet = self.SPEC.make(count=4, values=[0xA, 0xB, 0xC, 0xD])
        wire = self.SPEC.encode(packet)
        assert wire == bytes.fromhex("04abcd")

    def test_round_trip(self):
        packet = self.SPEC.make(count=6, values=[1, 2, 3, 4, 5, 6])
        assert self.SPEC.decode(self.SPEC.encode(packet)) == packet

    def test_odd_count_fails_decode_cleanly(self):
        # 3 nibbles = 12 bits: the spec cannot decode to a byte boundary.
        with pytest.raises(DecodeError):
            self.SPEC.decode(bytes.fromhex("03abc0"))


class TestReservedNonZero:
    def test_reserved_with_custom_value(self):
        spec = PacketSpec(
            "Magic",
            fields=[Reserved("magic", bits=8, value=0x7E), UInt("x", bits=8)],
        )
        packet = spec.make(x=1)
        assert spec.encode(packet)[0] == 0x7E
        # Wrong magic on the wire decodes raw but fails verification.
        tampered = b"\x00\x01"
        assert spec.try_parse(tampered) is None
        assert spec.decode(tampered).magic == 0


class TestFlagAsDependentInput:
    def test_length_depends_on_flag(self):
        spec = PacketSpec(
            "FlagLen",
            fields=[
                Flag("extended"),
                Reserved("pad", bits=7),
                Bytes("extra", length=this.extended * 4),
            ],
        )
        short = spec.make(extended=False, extra=b"")
        long = spec.make(extended=True, extra=b"abcd")
        assert len(spec.encode(short)) == 1
        assert len(spec.encode(long)) == 5
        assert spec.decode(spec.encode(long)).extra == b"abcd"
