"""Classic header specs: IPv4 (Figure 1), UDP, TCP, ICMP."""

import pytest

from repro.core.packet import VerificationError
from repro.protocols.headers import (
    ICMP_ECHO,
    IPV4_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    ipv4_address,
    ipv4_address_string,
    make_ipv4_header,
)


class TestAddressHelpers:
    def test_round_trip(self):
        for dotted in ("0.0.0.0", "192.168.0.1", "255.255.255.255", "10.1.2.3"):
            assert ipv4_address_string(ipv4_address(dotted)) == dotted

    def test_known_value(self):
        assert ipv4_address("192.168.0.1") == 0xC0A80001

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ipv4_address("1.2.3")
        with pytest.raises(ValueError):
            ipv4_address("1.2.3.999")
        with pytest.raises(ValueError):
            ipv4_address_string(1 << 32)


class TestIpv4:
    def test_wikipedia_example_checksum(self):
        """The canonical worked example: checksum must be 0xB861."""
        packet = IPV4_HEADER.make(
            ihl=5, tos=0, total_length=0x73, identification=0, flags=2,
            fragment_offset=0, ttl=64, protocol=17,
            source=ipv4_address("192.168.0.1"),
            destination=ipv4_address("192.168.0.199"),
            options=b"",
        )
        assert packet.header_checksum == 0xB861

    def test_wire_bytes_match_reference(self):
        packet = IPV4_HEADER.make(
            ihl=5, tos=0, total_length=0x73, identification=0, flags=2,
            fragment_offset=0, ttl=64, protocol=17,
            source=ipv4_address("192.168.0.1"),
            destination=ipv4_address("192.168.0.199"),
            options=b"",
        )
        expected = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert IPV4_HEADER.encode(packet) == expected

    def test_parse_reference_bytes(self):
        wire = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        verified = IPV4_HEADER.parse(wire)
        header = verified.value
        assert header.version == 4
        assert header.ttl == 64
        assert ipv4_address_string(header.source) == "192.168.0.1"
        assert verified.certificate.certifies("header_checksum_valid")

    def test_corrupted_header_rejected(self):
        wire = bytearray.fromhex("45000073000040004011b861c0a80001c0a800c7")
        wire[8] = 63  # change TTL without fixing the checksum
        assert IPV4_HEADER.try_parse(bytes(wire)) is None

    def test_options_length_follows_ihl(self):
        wire, verified = make_ipv4_header(
            "10.0.0.1", "10.0.0.2", options=b"\x01\x01\x01\x01"
        )
        assert verified.value.ihl == 6
        assert len(wire) == 24
        reparsed = IPV4_HEADER.parse(wire)
        assert reparsed.value.options == b"\x01\x01\x01\x01"

    def test_version_constraint_enforced(self):
        packet = IPV4_HEADER.make(
            ihl=5, tos=0, total_length=20, identification=0, flags=0,
            fragment_offset=0, ttl=64, protocol=6,
            source=0, destination=0, options=b"",
        ).replace(version=6)
        with pytest.raises(VerificationError):
            IPV4_HEADER.verify(packet)

    def test_total_length_constraint(self):
        packet = IPV4_HEADER.make(
            ihl=5, tos=0, total_length=10, identification=0, flags=0,
            fragment_offset=0, ttl=64, protocol=6,
            source=0, destination=0, options=b"",
        )
        with pytest.raises(VerificationError) as excinfo:
            IPV4_HEADER.verify(packet)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert "total_length_covers_header" in names


class TestUdp:
    def test_round_trip_with_payload(self):
        packet = UDP_HEADER.make(
            source_port=5353, destination_port=53, length=8 + 11,
            payload=b"hello world",
        )
        verified = UDP_HEADER.parse(UDP_HEADER.encode(packet))
        assert verified.value.payload == b"hello world"

    def test_length_field_drives_payload_size(self):
        packet = UDP_HEADER.make(
            source_port=1, destination_port=2, length=8 + 3, payload=b"abc"
        )
        wire = UDP_HEADER.encode(packet)
        assert len(wire) == 11

    def test_short_length_rejected_at_decode(self):
        # length=4 < 8 makes the payload length negative.
        bad = (4).to_bytes(2, "big").join([b"\x00\x01\x00\x02", b"\x00\x00"])
        assert UDP_HEADER.try_parse(b"\x00\x01\x00\x02\x00\x04\x00\x00") is None

    def test_checksum_detects_payload_corruption(self):
        packet = UDP_HEADER.make(
            source_port=1, destination_port=2, length=8 + 4, payload=b"data"
        )
        wire = bytearray(UDP_HEADER.encode(packet))
        wire[-1] ^= 0x01
        assert UDP_HEADER.try_parse(bytes(wire)) is None


class TestTcp:
    def make_segment(self, **overrides):
        values = dict(
            source_port=443, destination_port=51000, sequence=1000,
            acknowledgment=2000, data_offset=5, urg=False, ack=True,
            psh=False, rst=False, syn=False, fin=False, window=65535,
            urgent_pointer=0, options=b"",
        )
        values.update(overrides)
        return TCP_HEADER.make(**values)

    def test_round_trip(self):
        packet = self.make_segment()
        verified = TCP_HEADER.parse(TCP_HEADER.encode(packet))
        assert verified.value.ack is True
        assert verified.value.window == 65535

    def test_flag_bits_positions(self):
        syn_packet = self.make_segment(syn=True, ack=False)
        wire = TCP_HEADER.encode(syn_packet)
        assert wire[13] == 0b00000010  # SYN bit, RFC 793 layout

    def test_syn_fin_exclusion(self):
        packet = self.make_segment(syn=True, fin=True, ack=False)
        with pytest.raises(VerificationError) as excinfo:
            TCP_HEADER.verify(packet)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert "syn_fin_exclusive" in names

    def test_options_follow_data_offset(self):
        packet = self.make_segment(data_offset=6, options=b"\x02\x04\x05\xb4")
        reparsed = TCP_HEADER.parse(TCP_HEADER.encode(packet))
        assert reparsed.value.options == b"\x02\x04\x05\xb4"


class TestIcmp:
    def test_echo_request_round_trip(self):
        packet = ICMP_ECHO.make(
            type=8, identifier=0x1234, sequence_number=1, data=b"ping!"
        )
        verified = ICMP_ECHO.parse(ICMP_ECHO.encode(packet))
        assert verified.value.type == 8
        assert verified.value.data == b"ping!"

    def test_unknown_type_rejected(self):
        packet = ICMP_ECHO.make(
            type=8, identifier=1, sequence_number=1, data=b""
        ).replace(type=5)
        with pytest.raises(VerificationError):
            ICMP_ECHO.verify(packet)
