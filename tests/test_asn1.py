"""Mini-ASN.1: abstract syntax validation and both encoding rule sets."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import (
    Asn1Error,
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
    der_decode,
    der_encode,
    per_decode,
    per_encode,
)

MESSAGE = Sequence(
    [
        ("version", Integer(0, 7)),
        ("urgent", Boolean()),
        ("kind", Enumerated({"data": 0, "ack": 1, "nak": 2})),
        ("payload", OctetString()),
        ("tags", SequenceOf(Integer(0, 255))),
        ("route", Choice([("name", IA5String()), ("id", Integer())])),
    ]
)

VALUE = {
    "version": 4,
    "urgent": True,
    "kind": "ack",
    "payload": b"hello world",
    "tags": [1, 2, 250],
    "route": ("name", "relay-7"),
}


class TestValidation:
    def test_integer_constraints(self):
        Integer(0, 7).validate(5)
        with pytest.raises(Asn1Error):
            Integer(0, 7).validate(8)
        with pytest.raises(Asn1Error):
            Integer(0, 7).validate(True)  # bool is not INTEGER

    def test_inverted_constraint_rejected(self):
        with pytest.raises(Asn1Error):
            Integer(7, 0)

    def test_sequence_field_exactness(self):
        schema = Sequence([("a", Integer()), ("b", Boolean())])
        schema.validate({"a": 1, "b": True})
        with pytest.raises(Asn1Error, match="mismatch"):
            schema.validate({"a": 1})
        with pytest.raises(Asn1Error, match="mismatch"):
            schema.validate({"a": 1, "b": True, "c": 2})

    def test_choice_alternative_names(self):
        schema = Choice([("x", Integer()), ("y", Boolean())])
        schema.validate(("x", 1))
        with pytest.raises(Asn1Error, match="no alternative"):
            schema.validate(("z", 1))

    def test_ia5_must_be_ascii(self):
        with pytest.raises(Asn1Error, match="ASCII"):
            IA5String().validate("héllo")

    def test_octet_string_size_constraints(self):
        schema = OctetString(min_size=2, max_size=4)
        schema.validate(b"abc")
        with pytest.raises(Asn1Error):
            schema.validate(b"a")
        with pytest.raises(Asn1Error):
            schema.validate(b"abcde")

    def test_enumerated_distinct_values(self):
        with pytest.raises(Asn1Error, match="distinct"):
            Enumerated({"a": 1, "b": 1})


class TestDer:
    def test_round_trip(self):
        assert der_decode(MESSAGE, der_encode(MESSAGE, VALUE)) == VALUE

    def test_known_small_encodings(self):
        assert der_encode(Boolean(), True) == b"\x01\x01\xff"
        assert der_encode(Boolean(), False) == b"\x01\x01\x00"
        assert der_encode(Integer(), 0) == b"\x02\x01\x00"
        assert der_encode(Integer(), 127) == b"\x02\x01\x7f"
        assert der_encode(Integer(), 128) == b"\x02\x02\x00\x80"
        assert der_encode(Integer(), -128) == b"\x02\x01\x80"

    def test_long_form_length(self):
        data = b"\x00" * 200
        encoded = der_encode(OctetString(), data)
        assert encoded[:3] == b"\x04\x81\xc8"
        assert der_decode(OctetString(), encoded) == data

    def test_trailing_data_rejected(self):
        with pytest.raises(Asn1Error, match="trailing"):
            der_decode(Boolean(), b"\x01\x01\xff\x00")

    def test_wrong_tag_rejected(self):
        with pytest.raises(Asn1Error, match="expected tag"):
            der_decode(Integer(), b"\x04\x01\x00")

    def test_truncated_body_rejected(self):
        with pytest.raises(Asn1Error, match="truncated"):
            der_decode(OctetString(), b"\x04\x05abc")


class TestPer:
    def test_round_trip(self):
        assert per_decode(MESSAGE, per_encode(MESSAGE, VALUE)) == VALUE

    def test_constrained_integer_packs_to_bits(self):
        # A (0,7) integer needs 3 bits; alone it packs into one byte.
        assert len(per_encode(Integer(0, 7), 5)) == 1

    def test_single_valued_constraint_takes_zero_bits(self):
        schema = Sequence([("fixed", Integer(3, 3)), ("flag", Boolean())])
        encoded = per_encode(schema, {"fixed": 3, "flag": True})
        assert len(encoded) == 1
        assert per_decode(schema, encoded) == {"fixed": 3, "flag": True}

    def test_unconstrained_integer_round_trips(self):
        for value in (0, 1, -1, 127, 128, -129, 2**40, -(2**40)):
            assert per_decode(Integer(), per_encode(Integer(), value)) == value


class TestEncodingRulesDiffer:
    """The paper §2.1: same abstract value, different wire packets."""

    def test_encodings_differ(self):
        assert der_encode(MESSAGE, VALUE) != per_encode(MESSAGE, VALUE)

    def test_per_is_smaller(self):
        assert len(per_encode(MESSAGE, VALUE)) < len(der_encode(MESSAGE, VALUE))

    def test_both_decode_to_the_same_abstract_value(self):
        assert der_decode(MESSAGE, der_encode(MESSAGE, VALUE)) == per_decode(
            MESSAGE, per_encode(MESSAGE, VALUE)
        )

    def test_cross_decoding_fails_or_differs(self):
        """PER bytes are meaningless under DER rules."""
        packed = per_encode(MESSAGE, VALUE)
        with pytest.raises(Asn1Error):
            der_decode(MESSAGE, packed)


@st.composite
def message_values(draw):
    return {
        "version": draw(st.integers(0, 7)),
        "urgent": draw(st.booleans()),
        "kind": draw(st.sampled_from(["data", "ack", "nak"])),
        "payload": draw(st.binary(max_size=64)),
        "tags": draw(st.lists(st.integers(0, 255), max_size=10)),
        "route": draw(
            st.one_of(
                st.tuples(
                    st.just("name"),
                    st.text(
                        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                        max_size=20,
                    ),
                ),
                st.tuples(st.just("id"), st.integers(-(2**31), 2**31)),
            )
        ),
    }


class TestProperties:
    @given(message_values())
    def test_der_round_trip_property(self, value):
        assert der_decode(MESSAGE, der_encode(MESSAGE, value)) == value

    @given(message_values())
    def test_per_round_trip_property(self, value):
        assert per_decode(MESSAGE, per_encode(MESSAGE, value)) == value

    @given(message_values())
    def test_per_never_larger_on_this_schema(self, value):
        assert len(per_encode(MESSAGE, value)) <= len(der_encode(MESSAGE, value))
