"""Checksum algorithms against published test vectors and basic laws."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.wire.checksums import (
    CHECKSUM_ALGORITHMS,
    adler32,
    crc16_ccitt,
    crc32,
    fletcher16,
    internet_checksum,
    register_algorithm,
    xor8,
)


class TestXor8:
    def test_empty_is_zero(self):
        assert xor8(b"") == 0

    def test_single_byte_is_itself(self):
        assert xor8(b"\x5a") == 0x5A

    def test_self_inverse(self):
        assert xor8(b"\x12\x34\x12\x34") == 0

    @given(st.binary(max_size=64))
    def test_order_independent(self, data):
        assert xor8(data) == xor8(bytes(reversed(data)))


class TestInternetChecksum:
    def test_rfc1071_style_example(self):
        # Sum of 0x0001 and 0xf203 and 0xf4f5 and 0xf6f7 per RFC 1071 §3.
        data = bytes.fromhex("0001f203f4f5f6f7")
        total = (0x0001 + 0xF203 + 0xF4F5 + 0xF6F7)
        total = (total & 0xFFFF) + (total >> 16)
        assert internet_checksum(data) == (~total & 0xFFFF)

    def test_ipv4_wikipedia_example(self):
        # The widely used example header: checksum field zeroed.
        header = bytes.fromhex("45000073000040004011" + "0000" + "c0a80001c0a800c7")
        assert internet_checksum(header) == 0xB861

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verification_property(self):
        # A packet with its correct checksum inserted sums to zero.
        data = b"hello protocol"
        checksum = internet_checksum(data)
        total = internet_checksum(data + checksum.to_bytes(2, "big"))
        assert total == 0


class TestFletcher16:
    def test_known_vector_abcde(self):
        # Classic test vector: "abcde" -> 0xC8F0.
        assert fletcher16(b"abcde") == 0xC8F0

    def test_known_vector_abcdef(self):
        assert fletcher16(b"abcdef") == 0x2057

    def test_detects_transposition(self):
        assert fletcher16(b"ab") != fletcher16(b"ba")


class TestCrc:
    def test_crc16_ccitt_check_value(self):
        # The standard check input "123456789" -> 0x29B1 for CCITT-FALSE.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_crc32_matches_zlib(self):
        for data in (b"", b"a", b"123456789", b"the quick brown fox"):
            assert crc32(data) == zlib.crc32(data) & 0xFFFFFFFF

    def test_crc32_check_value(self):
        assert crc32(b"123456789") == 0xCBF43926


class TestAdler32:
    def test_matches_zlib(self):
        for data in (b"", b"Wikipedia", b"123456789", bytes(range(256))):
            assert adler32(data) == zlib.adler32(data) & 0xFFFFFFFF


class TestRegistry:
    def test_all_algorithms_present(self):
        assert {
            "xor8",
            "internet",
            "fletcher16",
            "crc16-ccitt",
            "crc32",
            "adler32",
        } <= set(CHECKSUM_ALGORITHMS)

    def test_declared_widths_bound_outputs(self):
        data = b"width check payload"
        for algorithm in CHECKSUM_ALGORITHMS.values():
            assert 0 <= algorithm.compute(data) < (1 << algorithm.bits)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("xor8", 8, xor8)

    def test_custom_registration(self):
        name = "test-sum8"
        if name not in CHECKSUM_ALGORITHMS:
            register_algorithm(name, 8, lambda data: sum(data) & 0xFF)
        assert CHECKSUM_ALGORITHMS[name].compute(b"\x01\x02") == 3
