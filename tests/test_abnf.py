"""The RFC 5234 ABNF engine: grammar parsing and matching."""

import pytest

from repro.abnf import (
    AbnfMatchError,
    AbnfSyntaxError,
    Alternation,
    CharLiteral,
    Matcher,
    NumRange,
    NumSet,
    Repetition,
    RuleRef,
    parse_grammar,
)


class TestGrammarParsing:
    def test_simple_rule(self):
        grammar = parse_grammar('greeting = "hello"')
        rule = grammar.rule("greeting")
        assert isinstance(rule, CharLiteral)
        assert rule.text == "hello"

    def test_rule_names_case_insensitive(self):
        grammar = parse_grammar('Greeting = "hi"')
        assert grammar.rule("GREETING") == grammar.rule("greeting")

    def test_alternation_and_concatenation(self):
        grammar = parse_grammar('x = "a" "b" / "c"')
        rule = grammar.rule("x")
        assert isinstance(rule, Alternation)
        assert len(rule.choices) == 2

    def test_repetition_forms(self):
        grammar = parse_grammar(
            'a = *DIGIT\nb = 1*DIGIT\nc = 2*4DIGIT\nd = 3DIGIT\ne = [DIGIT]'
        )
        a = grammar.rule("a")
        assert isinstance(a, Repetition) and a.minimum == 0 and a.maximum is None
        b = grammar.rule("b")
        assert b.minimum == 1 and b.maximum is None
        c = grammar.rule("c")
        assert c.minimum == 2 and c.maximum == 4
        d = grammar.rule("d")
        assert d.minimum == 3 and d.maximum == 3
        e = grammar.rule("e")
        assert e.minimum == 0 and e.maximum == 1

    def test_numeric_values(self):
        grammar = parse_grammar("crlf2 = %d13.10\nhexr = %x41-5A\nbits = %b1010")
        assert grammar.rule("crlf2") == NumSet((13, 10))
        assert grammar.rule("hexr") == NumRange(0x41, 0x5A)
        assert grammar.rule("bits") == NumSet((0b1010,))

    def test_comments_stripped(self):
        grammar = parse_grammar('x = "a" ; trailing comment\n; full line\ny = "b"')
        assert grammar.rule("x") == CharLiteral("a")
        assert grammar.rule("y") == CharLiteral("b")

    def test_continuation_lines(self):
        grammar = parse_grammar('x = "a" /\n    "b"')
        assert isinstance(grammar.rule("x"), Alternation)

    def test_incremental_alternative(self):
        grammar = parse_grammar('x = "a"\nx =/ "b"')
        rule = grammar.rule("x")
        assert isinstance(rule, Alternation)
        assert len(rule.choices) == 2

    def test_incremental_without_base_rejected(self):
        with pytest.raises(AbnfSyntaxError, match="undefined rule"):
            parse_grammar('x =/ "a"')

    def test_duplicate_rule_rejected(self):
        with pytest.raises(AbnfSyntaxError, match="defined twice"):
            parse_grammar('x = "a"\nx = "b"')

    def test_syntax_errors_reported(self):
        with pytest.raises(AbnfSyntaxError):
            parse_grammar('x = ("a"')
        with pytest.raises(AbnfSyntaxError):
            parse_grammar('x = %q12')
        with pytest.raises(AbnfSyntaxError, match="without"):
            parse_grammar("justaname")

    def test_core_rules_available(self):
        grammar = parse_grammar('x = ALPHA DIGIT CRLF')
        assert "alpha" in grammar.rule_names()
        assert "octet" in grammar.rule_names()

    def test_undefined_references_lint(self):
        grammar = parse_grammar("x = ghost-rule DIGIT")
        assert grammar.undefined_references() == ["ghost-rule"]


class TestMatching:
    def test_literal_case_insensitive_by_default(self):
        matcher = Matcher(parse_grammar('m = "Get"'))
        assert matcher.fullmatch("m", "GET")
        assert matcher.fullmatch("m", "get")

    def test_case_sensitive_literal(self):
        matcher = Matcher(parse_grammar('m = %s"POST"'))
        assert matcher.fullmatch("m", "POST")
        assert not matcher.fullmatch("m", "post")

    def test_repetition_bounds(self):
        matcher = Matcher(parse_grammar('m = 2*3"ab"'))
        assert not matcher.fullmatch("m", "ab")
        assert matcher.fullmatch("m", "abab")
        assert matcher.fullmatch("m", "ababab")
        assert not matcher.fullmatch("m", "abababab")

    def test_alternation_backtracks(self):
        # First alternative matches a prefix; matching must backtrack to
        # the second to consume the full input.
        matcher = Matcher(parse_grammar('m = ("a" / "ab") "c"'))
        assert matcher.fullmatch("m", "abc")
        assert matcher.fullmatch("m", "ac")

    def test_greedy_star_backtracks(self):
        matcher = Matcher(parse_grammar('m = *ALPHA "x"'))
        assert matcher.fullmatch("m", "abcx")
        assert matcher.fullmatch("m", "x")

    def test_numeric_range_on_bytes(self):
        matcher = Matcher(parse_grammar("m = %x00-1F"))
        assert matcher.fullmatch("m", b"\x05")
        assert not matcher.fullmatch("m", b"\x20")

    def test_prefix_lengths(self):
        matcher = Matcher(parse_grammar('m = *"ab"'))
        assert matcher.prefix_lengths("m", "ababX") == [0, 2, 4]

    def test_prose_value_refuses_to_match(self):
        matcher = Matcher(parse_grammar("m = <some informal prose>"))
        with pytest.raises(AbnfMatchError, match="prose"):
            matcher.fullmatch("m", "anything")

    def test_undefined_rule_reference_raises(self):
        matcher = Matcher(parse_grammar("m = ghost"))
        with pytest.raises(AbnfMatchError, match="undefined rule"):
            matcher.fullmatch("m", "x")

    def test_left_recursion_detected(self):
        matcher = Matcher(parse_grammar('m = m "a"'), max_depth=50)
        with pytest.raises(AbnfMatchError, match="recursi"):
            matcher.fullmatch("m", "aaa")

    def test_zero_width_repeat_terminates(self):
        matcher = Matcher(parse_grammar('m = *( *"x" ) "end"'))
        assert matcher.fullmatch("m", "end")

    def test_realistic_message_grammar(self):
        grammar = parse_grammar(
            """
            request = method SP path SP version CRLF
            method = "GET" / "HEAD" / "POST"
            path = "/" *(ALPHA / DIGIT / "/" / "." / "-")
            version = "HTTP/" DIGIT "." DIGIT
            """
        )
        matcher = Matcher(grammar)
        assert matcher.fullmatch("request", "GET /index.html HTTP/1.1\r\n")
        assert not matcher.fullmatch("request", "YEET / HTTP/1.1\r\n")
        assert not matcher.fullmatch("request", "GET /index.html HTTP/1.1")

    def test_exported_dsl_grammar_parses_and_matches(self):
        """The DSL's ABNF exporter emits grammar this engine accepts."""
        from repro.core.abnf_export import export_abnf
        from repro.protocols.arq import ARQ_PACKET

        grammar = parse_grammar(export_abnf(ARQ_PACKET))
        matcher = Matcher(grammar)
        wire = ARQ_PACKET.encode(ARQ_PACKET.make(seq=1, length=2, payload=b"ok"))
        assert matcher.fullmatch("arqdata", wire)
        # And the semantic gap: ABNF also accepts a CORRUPTED packet —
        # the checksum constraint is invisible to it (the paper's point).
        corrupted = bytearray(wire)
        corrupted[1] ^= 0xFF
        assert matcher.fullmatch("arqdata", bytes(corrupted))
        assert ARQ_PACKET.try_parse(bytes(corrupted)) is None
