"""The discrete-event simulator: clock, timers, channels, links."""

import random

import pytest

from repro.netsim import (
    Channel,
    ChannelConfig,
    DuplexLink,
    Node,
    Simulator,
    Timer,
)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.25, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.25]

    def test_run_until_time_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(2)))
        sim.run()
        assert fired == [2]
        assert sim.now == 2.0

    def test_run_until_predicate(self):
        sim = Simulator()
        counter = []

        def tick():
            counter.append(1)
            if len(counter) < 10:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        assert sim.run_until(lambda: len(counter) >= 3)
        assert len(counter) == 3

    def test_max_events_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        sim.run(max_events=50)
        assert sim.events_processed == 50


class TestTimer:
    def test_fires_after_duration(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]
        assert timer.expirations == 1

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(1))
        timer.start()
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=1.0)
        timer.start()  # restart at t=1: should fire at t=3, not t=2
        sim.run()
        assert fired == [3.0]

    def test_duration_change_on_start(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start(duration=0.5)
        sim.run()
        assert fired == [0.5]

    def test_remaining(self):
        sim = Simulator()
        timer = Timer(sim, 4.0, lambda: None)
        timer.start()
        sim.schedule(1.0, lambda: None)
        sim.step()
        assert timer.remaining == 3.0

    def test_invalid_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timer(sim, 0.0, lambda: None)
        timer = Timer(sim, 1.0, lambda: None)
        with pytest.raises(ValueError):
            timer.start(duration=-1)


class TestChannel:
    def make_channel(self, config, seed=0):
        sim = Simulator()
        received = []
        channel = Channel(sim, config, random.Random(seed), received.append)
        return sim, channel, received

    def test_clean_channel_delivers_everything(self):
        sim, channel, received = self.make_channel(ChannelConfig())
        frames = [bytes([i]) for i in range(20)]
        for frame in frames:
            channel.send(frame)
        sim.run()
        assert received == frames
        assert channel.stats.delivered == 20

    def test_full_loss_delivers_nothing(self):
        sim, channel, received = self.make_channel(ChannelConfig(loss_rate=1.0))
        for i in range(10):
            channel.send(bytes([i]))
        sim.run()
        assert received == []
        assert channel.stats.dropped == 10

    def test_corruption_flips_exactly_one_bit(self):
        sim, channel, received = self.make_channel(
            ChannelConfig(corruption_rate=1.0), seed=3
        )
        channel.send(b"\x00\x00\x00\x00")
        sim.run()
        assert len(received) == 1
        flipped_bits = sum(bin(b).count("1") for b in received[0])
        assert flipped_bits == 1

    def test_duplication_delivers_twice(self):
        sim, channel, received = self.make_channel(
            ChannelConfig(duplication_rate=1.0)
        )
        channel.send(b"x")
        sim.run()
        assert received == [b"x", b"x"]
        assert channel.stats.duplicated == 1

    def test_deterministic_given_seed(self):
        config = ChannelConfig(loss_rate=0.3, corruption_rate=0.2, jitter=0.1)
        outcomes = []
        for _ in range(2):
            sim, channel, received = self.make_channel(config, seed=42)
            for i in range(50):
                channel.send(bytes([i]))
            sim.run()
            outcomes.append(list(received))
        assert outcomes[0] == outcomes[1]

    def test_loss_rate_statistics(self):
        sim, channel, received = self.make_channel(
            ChannelConfig(loss_rate=0.3), seed=1
        )
        for i in range(2000):
            channel.send(bytes([i % 256]))
        sim.run()
        observed = channel.stats.dropped / channel.stats.sent
        assert 0.25 < observed < 0.35

    def test_unconnected_channel_rejects_send(self):
        sim = Simulator()
        channel = Channel(sim, ChannelConfig(), random.Random(0))
        with pytest.raises(RuntimeError, match="no receiver"):
            channel.send(b"x")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=1.5)
        with pytest.raises(ValueError):
            ChannelConfig(delay=-1.0)

    def test_reordering_with_jitter(self):
        sim, channel, received = self.make_channel(
            ChannelConfig(reorder_rate=0.5, reorder_delay=1.0), seed=7
        )
        for i in range(30):
            channel.send(bytes([i]))
        sim.run()
        assert sorted(received) != received  # some frame arrived out of order
        assert len(received) == 30


class TestNodesAndLinks:
    def test_duplex_link_carries_both_directions(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        DuplexLink(sim, a, b, ChannelConfig())
        inbox_a, inbox_b = [], []
        a.on_receive(lambda frame, sender: inbox_a.append((frame, sender)))
        b.on_receive(lambda frame, sender: inbox_b.append((frame, sender)))
        a.send("b", b"to-b")
        b.send("a", b"to-a")
        sim.run()
        assert inbox_b == [(b"to-b", "a")]
        assert inbox_a == [(b"to-a", "b")]

    def test_unknown_peer_rejected(self):
        sim = Simulator()
        a = Node(sim, "a")
        with pytest.raises(KeyError, match="no link"):
            a.send("stranger", b"x")

    def test_unhandled_frames_dropped_silently(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        DuplexLink(sim, a, b, ChannelConfig())
        a.send("b", b"x")  # b has no handler
        sim.run()  # must not raise

    def test_direction_streams_are_independent(self):
        """Traffic in one direction must not perturb the other's faults."""
        config = ChannelConfig(loss_rate=0.5)

        def run(extra_reverse_traffic):
            sim = Simulator()
            a, b = Node(sim, "a"), Node(sim, "b")
            DuplexLink(sim, a, b, config, seed=9)
            inbox = []
            b.on_receive(lambda frame, sender: inbox.append(frame))
            a.on_receive(lambda frame, sender: None)
            for i in range(100):
                a.send("b", bytes([i]))
                if extra_reverse_traffic:
                    b.send("a", b"noise")
            sim.run()
            return inbox

        assert run(False) == run(True)
