"""The DSL -> ABNF exporter and the semantic gap it documents."""

from repro.abnf import Matcher, parse_grammar
from repro.core.abnf_export import export_abnf
from repro.core.fields import Bytes, ChecksumField, Flag, Reserved, UInt, UIntList
from repro.core.packet import PacketSpec
from repro.core.symbolic import this
from repro.protocols.headers import IPV4_HEADER, UDP_HEADER


class TestExportStructure:
    def test_top_rule_lists_fields_in_order(self):
        spec = PacketSpec(
            "Simple", fields=[UInt("a", bits=8), Bytes("body", length=2)]
        )
        text = export_abnf(spec)
        assert "simple = simple-a simple-body" in text
        assert "simple-a = OCTET" in text
        assert "simple-body = 2OCTET" in text

    def test_bit_fields_grouped_into_octets(self):
        spec = PacketSpec(
            "Bits",
            fields=[UInt("v", bits=4), UInt("h", bits=4), UInt("w", bits=8)],
        )
        text = export_abnf(spec)
        assert "bits-bits1 = OCTET" in text
        assert "v:4 h:4" in text

    def test_greedy_bytes_star_octet(self):
        spec = PacketSpec("G", fields=[UInt("a", bits=8), Bytes("rest")])
        assert "g-rest = *OCTET" in export_abnf(spec)

    def test_semantic_gaps_documented(self):
        text = export_abnf(UDP_HEADER)
        assert "NOT expressible in ABNF" in text
        assert "internet" in text  # the checksum algorithm is named

    def test_dependent_length_noted(self):
        spec = PacketSpec(
            "Dep",
            fields=[UInt("length", bits=8), Bytes("payload", length=this.length)],
        )
        text = export_abnf(spec)
        assert "this.length" in text

    def test_uint_list_noted(self):
        spec = PacketSpec(
            "L",
            fields=[
                UInt("n", bits=8),
                UIntList("xs", element_bits=16, count=this.n),
            ],
        )
        text = export_abnf(spec)
        assert "dependent counts" in text


class TestExportedGrammarsAreValid:
    def test_ipv4_export_parses(self):
        grammar = parse_grammar(export_abnf(IPV4_HEADER))
        assert "ipv4header" in grammar.rule_names()
        assert grammar.undefined_references() == []

    def test_udp_export_accepts_real_wire_bytes(self):
        grammar = parse_grammar(export_abnf(UDP_HEADER))
        matcher = Matcher(grammar)
        packet = UDP_HEADER.make(
            source_port=1, destination_port=2, length=8 + 3, payload=b"abc"
        )
        assert matcher.fullmatch("udpdatagram", UDP_HEADER.encode(packet))

    def test_exported_grammar_is_strictly_weaker(self):
        """ABNF accepts packets the DSL rejects: the containment claim."""
        grammar = parse_grammar(export_abnf(UDP_HEADER))
        matcher = Matcher(grammar)
        packet = UDP_HEADER.make(
            source_port=1, destination_port=2, length=8 + 3, payload=b"abc"
        )
        corrupted = bytearray(UDP_HEADER.encode(packet))
        corrupted[6] ^= 0xFF  # break the checksum
        assert matcher.fullmatch("udpdatagram", bytes(corrupted))
        assert UDP_HEADER.try_parse(bytes(corrupted)) is None
