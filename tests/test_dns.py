"""The DNS header spec: bit-exact layout and RFC 1035 semantics."""

import pytest

from repro.core.packet import VerificationError
from repro.protocols.dns import (
    DNS_HEADER,
    DNS_QUESTION_FIXED,
    make_query_header,
    make_response_header,
)


class TestWireFormat:
    def test_standard_query_reference_bytes(self):
        """A recursive standard query is the classic 0100 flags word."""
        verified = make_query_header(0x1234)
        assert DNS_HEADER.encode(verified.value) == bytes.fromhex(
            "123401000001000000000000"
        )

    def test_authoritative_response_reference_bytes(self):
        verified = make_response_header(0x1234, answers=2, authoritative=True)
        assert DNS_HEADER.encode(verified.value) == bytes.fromhex(
            "123485800001000200000000"
        )

    def test_flags_word_bit_positions(self):
        packet = DNS_HEADER.make(
            id=0, qr=True, opcode=2, aa=False, tc=True, rd=False, ra=True,
            rcode=3, qdcount=0, ancount=0, nscount=0, arcount=0,
        )
        wire = DNS_HEADER.encode(packet)
        # QR=1 opcode=0010 AA=0 TC=1 RD=0 -> 1001 0010 ; RA=1 Z=000 RCODE=0011
        assert wire[2] == 0b10010010
        assert wire[3] == 0b10000011

    def test_round_trip(self):
        verified = make_response_header(0xBEEF, answers=1)
        wire = DNS_HEADER.encode(verified.value)
        assert DNS_HEADER.parse(wire).value == verified.value

    def test_header_is_twelve_bytes(self):
        assert DNS_HEADER.fixed_bit_width() == 96


class TestSemantics:
    def test_aa_in_query_rejected(self):
        packet = DNS_HEADER.make(
            id=1, qr=False, opcode=0, aa=True, tc=False, rd=True, ra=False,
            rcode=0, qdcount=1, ancount=0, nscount=0, arcount=0,
        )
        with pytest.raises(VerificationError) as excinfo:
            DNS_HEADER.verify(packet)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert "aa_only_in_responses" in names

    def test_rcode_in_query_rejected(self):
        packet = DNS_HEADER.make(
            id=1, qr=False, opcode=0, aa=False, tc=False, rd=True, ra=False,
            rcode=3, qdcount=1, ancount=0, nscount=0, arcount=0,
        )
        with pytest.raises(VerificationError) as excinfo:
            DNS_HEADER.verify(packet)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert "rcode_zero_in_queries" in names

    def test_answers_in_query_rejected(self):
        packet = DNS_HEADER.make(
            id=1, qr=False, opcode=0, aa=False, tc=False, rd=True, ra=False,
            rcode=0, qdcount=1, ancount=2, nscount=0, arcount=0,
        )
        with pytest.raises(VerificationError):
            DNS_HEADER.verify(packet)

    def test_unknown_opcode_rejected(self):
        packet = DNS_HEADER.make(
            id=1, qr=True, opcode=0, aa=False, tc=False, rd=False, ra=False,
            rcode=0, qdcount=0, ancount=0, nscount=0, arcount=0,
        ).replace(opcode=9)
        with pytest.raises(VerificationError):
            DNS_HEADER.verify(packet)

    def test_nonzero_z_bits_rejected(self):
        verified = make_query_header(7)
        wire = bytearray(DNS_HEADER.encode(verified.value))
        wire[3] |= 0b01000000  # set a Z bit
        assert DNS_HEADER.try_parse(bytes(wire)) is None


class TestQuestionFixed:
    def test_a_record_question(self):
        packet = DNS_QUESTION_FIXED.make(qtype=1, qclass=1)
        assert DNS_QUESTION_FIXED.encode(packet) == b"\x00\x01\x00\x01"

    def test_unknown_qtype_rejected(self):
        packet = DNS_QUESTION_FIXED.make(qtype=1, qclass=1).replace(qtype=99)
        with pytest.raises(VerificationError):
            DNS_QUESTION_FIXED.verify(packet)
