"""Semantic constraints: symbolic and callable predicates."""

import pytest

from repro.core.constraints import Constraint, ConstraintViolation
from repro.core.fields import Bytes, UInt
from repro.core.packet import PacketSpec, VerificationError
from repro.core.symbolic import this


def spec_with(constraints):
    return PacketSpec(
        "C",
        fields=[UInt("count", bits=8), UInt("limit", bits=8), Bytes("body")],
        constraints=constraints,
    )


class TestConstraintObjects:
    def test_symbolic_predicate(self):
        constraint = Constraint("within_limit", this.count <= this.limit)
        assert constraint.is_symbolic
        spec = spec_with([constraint])
        good = spec.make(count=3, limit=5, body=b"")
        assert constraint.holds(good)
        bad = spec.make(count=9, limit=5, body=b"")
        assert not constraint.holds(bad)

    def test_callable_predicate(self):
        constraint = Constraint(
            "body_matches_count", lambda p: len(p.body) == p.count
        )
        assert not constraint.is_symbolic
        spec = spec_with([constraint])
        assert constraint.holds(spec.make(count=2, limit=9, body=b"ab"))
        assert not constraint.holds(spec.make(count=3, limit=9, body=b"ab"))

    def test_check_raises_with_context(self):
        constraint = Constraint("never", lambda p: False, doc="always fails")
        spec = spec_with([constraint])
        with pytest.raises(ConstraintViolation) as excinfo:
            constraint.check(spec.make(count=0, limit=0, body=b""))
        assert excinfo.value.constraint_name == "never"
        assert "always fails" in str(excinfo.value)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            Constraint("bad name", lambda p: True)


class TestVerificationIntegration:
    def test_all_violations_reported_together(self):
        spec = spec_with(
            [
                Constraint("within_limit", this.count <= this.limit),
                Constraint("body_matches_count", lambda p: len(p.body) == p.count),
            ]
        )
        bad = spec.make(count=9, limit=5, body=b"xx")
        with pytest.raises(VerificationError) as excinfo:
            spec.verify(bad)
        names = {v.constraint_name for v in excinfo.value.violations}
        assert names == {"within_limit", "body_matches_count"}

    def test_certificate_names_user_constraints(self):
        spec = spec_with([Constraint("within_limit", this.count <= this.limit)])
        verified = spec.verify(spec.make(count=1, limit=5, body=b"x"))
        assert verified.certificate.certifies("within_limit")

    def test_shape_violations_reported_as_constraints(self):
        spec = spec_with([])
        bad = spec.make(count=1, limit=1, body=b"").replace(count=999)
        with pytest.raises(VerificationError) as excinfo:
            spec.verify(bad)
        assert any(
            "shape" in v.constraint_name for v in excinfo.value.violations
        )
