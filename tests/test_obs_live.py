"""``repro.obs.live``: streaming telemetry, exporters, flight recorder.

The contracts under test:

* delta snapshots reconstruct the source registry exactly (merge of all
  deltas == full snapshot), across registry resets and worker respawns;
* ``MetricsRegistry.merge_snapshot`` validates before applying — a bad
  snapshot raises :class:`MergeError` and the registry is untouched;
* the exporter plane (Prometheus text, JSONL sinks, localhost server)
  publishes self-contained cumulative payloads, and stays entirely off
  (``None``) when ``REPRO_OBS_EXPORT`` names no target;
* a sharded conformance run with exports on produces merged counters
  byte-identical to the serial run — the live plane is advisory;
* an undeclared fuzzer failure with ``REPRO_OBS_FLIGHTREC`` armed dumps
  a bundle that replays deterministically to the same failure.
"""

import json
import os
import queue
import random
import socket
import threading

import pytest

from repro import obs, parallel
from repro.conformance.corpus import Corpus
from repro.conformance.coverage import CoverageMap
from repro.conformance.mutate import BUG_NONVERBATIM, MutationFuzzer, classify
from repro.conformance.registry import SpecEntry
from repro.conformance.runner import run_all
from repro.core.fields import Bytes, UInt
from repro.core.packet import PacketSpec
from repro.core.symbolic import this
from repro.obs import MergeError, MetricsRegistry
from repro.obs.live import flightrec
from repro.obs.live.delta import DeltaTracker
from repro.obs.live.expose import Exporter, JsonlSink, MetricsServer, prometheus_text
from repro.obs.live.stream import LiveAggregator, TelemetryStreamer, stream_interval
from repro.obs.live.top import load_export, render_frame, render_rates
from repro.parallel.confrun import run_all_parallel
from repro.parallel.policy import _from_env
from repro.testing import random_packet


@pytest.fixture(autouse=True)
def _clean_plane():
    """No leaked pool, policy, process obs state, or armed recorder."""
    parallel.set_policy(parallel.Parallel(workers=0))
    flightrec.install_recorder(None)
    yield
    parallel.shutdown()
    parallel.set_policy(_from_env())
    flightrec.reset_env_cache()
    obs.get_default().reset()
    obs.disable()


def _counters(registry):
    return {
        (name, tuple(sorted(entry["labels"].items()))): entry["value"]
        for name, entries in registry.snapshot().items()
        for entry in entries
        if entry["kind"] == "counter" and entry["value"]
    }


# -- delta snapshots -----------------------------------------------------


class TestDeltaTracker:
    def test_merged_deltas_reconstruct_source_registry(self):
        source, mirror = MetricsRegistry(), MetricsRegistry()
        tracker = DeltaTracker(source)
        source.counter("frames", proto="tcp").inc(3)
        source.gauge("depth").set(7)
        source.histogram("lat", bounds=[1, 10]).observe(5)
        mirror.merge_snapshot(tracker.delta_snapshot())
        source.counter("frames", proto="tcp").inc(4)
        source.counter("frames", proto="udp").inc(1)
        source.gauge("depth").set(2)
        source.histogram("lat", bounds=[1, 10]).observe(0.5)
        source.histogram("lat", bounds=[1, 10]).observe(40)
        mirror.merge_snapshot(tracker.delta_snapshot())
        assert mirror.snapshot() == source.snapshot()

    def test_idle_tick_is_empty(self):
        source = MetricsRegistry()
        tracker = DeltaTracker(source)
        source.counter("c").inc()
        tracker.delta_snapshot()
        assert tracker.delta_snapshot() == {}

    def test_counter_reset_emits_post_reset_value(self):
        # execute_unit zeroes the worker registry between units: the
        # post-reset value is new work, and summed deltas must equal
        # the total across units.
        source, mirror = MetricsRegistry(), MetricsRegistry()
        tracker = DeltaTracker(source)
        source.counter("cases").inc(10)
        mirror.merge_snapshot(tracker.delta_snapshot())
        source.reset()
        source.counter("cases").inc(4)
        mirror.merge_snapshot(tracker.delta_snapshot())
        assert _counters(mirror)[("cases", ())] == 14

    def test_histogram_reset_ships_whole_entry(self):
        source, mirror = MetricsRegistry(), MetricsRegistry()
        tracker = DeltaTracker(source)
        source.histogram("h", bounds=[1, 2]).observe(0.5)
        source.histogram("h", bounds=[1, 2]).observe(1.5)
        mirror.merge_snapshot(tracker.delta_snapshot())
        source.reset()
        source.histogram("h", bounds=[1, 2]).observe(3.0)
        mirror.merge_snapshot(tracker.delta_snapshot())
        merged = mirror.snapshot()["h"][0]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(5.0)

    def test_vanished_metrics_prune_baseline(self):
        source = MetricsRegistry()
        tracker = DeltaTracker(source)
        source.counter("gone").inc(5)
        tracker.delta_snapshot()
        source.clear()
        assert tracker.delta_snapshot() == {}
        assert tracker._base == {}


# -- merge hardening -----------------------------------------------------


class TestMergeErrors:
    def _histo_entry(self, **overrides):
        entry = {
            "labels": {},
            "kind": "histogram",
            "bounds": [1, 2],
            "bucket_counts": [1, 0, 0],
            "count": 1,
            "sum": 0.5,
            "min": 0.5,
            "max": 0.5,
        }
        entry.update(overrides)
        return entry

    def test_mismatched_bucket_ladder_rejected_registry_untouched(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=[1, 2]).observe(1.5)
        before = registry.snapshot()
        with pytest.raises(MergeError, match="bucket ladder"):
            registry.merge_snapshot({"h": [self._histo_entry(bounds=[1, 3])]})
        assert registry.snapshot() == before

    def test_unknown_kind_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MergeError, match="kind 'summary'"):
            registry.merge_snapshot(
                {"x": [{"labels": {}, "kind": "summary", "value": 1}]}
            )

    def test_kind_collision_against_registry_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(MergeError, match="registry holds a counter"):
            registry.merge_snapshot(
                {"x": [{"labels": {}, "kind": "gauge", "value": 1.0}]}
            )

    def test_kind_collision_within_snapshot_rejected(self):
        registry = MetricsRegistry()
        snapshot = {
            "x": [
                {"labels": {"a": 1}, "kind": "counter", "value": 1},
                {"labels": {"a": 1}, "kind": "gauge", "value": 2.0},
            ]
        }
        with pytest.raises(MergeError, match="both"):
            registry.merge_snapshot(snapshot)
        assert len(registry) == 0

    def test_negative_counter_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MergeError, match="non-negative"):
            registry.merge_snapshot(
                {"c": [{"labels": {}, "kind": "counter", "value": -3}]}
            )

    def test_malformed_shapes_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MergeError):
            registry.merge_snapshot({"c": "not-a-list"})
        with pytest.raises(MergeError):
            registry.merge_snapshot({"c": ["not-a-dict"]})
        with pytest.raises(MergeError):
            registry.merge_snapshot(
                {"c": [{"labels": "nope", "kind": "counter", "value": 1}]}
            )

    def test_excess_bucket_counts_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MergeError, match="bucket counts"):
            registry.merge_snapshot(
                {"h": [self._histo_entry(bucket_counts=[1, 0, 0, 0])]}
            )

    def test_partial_failure_applies_nothing(self):
        # First entry is fine, second is bad: validate-then-apply means
        # even the fine one must not land.
        registry = MetricsRegistry()
        snapshot = {
            "good": [{"labels": {}, "kind": "counter", "value": 5}],
            "bad": [{"labels": {}, "kind": "counter", "value": -1}],
        }
        with pytest.raises(MergeError):
            registry.merge_snapshot(snapshot)
        assert len(registry) == 0


# -- exposition ----------------------------------------------------------


class TestExposition:
    def test_prometheus_text_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("frames.sent", proto="tcp").inc(7)
        registry.gauge("queue.depth").set(3)
        registry.histogram("lat", bounds=[1, 10]).observe(5)
        registry.histogram("lat", bounds=[1, 10]).observe(0.5)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE frames_sent counter" in text
        assert 'frames_sent{proto="tcp"} 7' in text
        assert "queue_depth 3" in text
        # Cumulative buckets: 1 at le=1, 2 at le=10 and +Inf.
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_exporter_from_env_disabled_values(self):
        for value in ({}, {"REPRO_OBS_EXPORT": ""}, {"REPRO_OBS_EXPORT": "off"},
                      {"REPRO_OBS_EXPORT": "0"}, {"REPRO_OBS_EXPORT": "none"}):
            assert Exporter.from_env(value) is None

    def test_jsonl_sink_stream_is_self_contained(self, tmp_path):
        path = str(tmp_path / "export.jsonl")
        exporter = Exporter.from_env({"REPRO_OBS_EXPORT": path})
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        exporter.publish(registry.snapshot(), kind="live")
        registry.counter("c").inc(9)
        exporter.publish(registry.snapshot(), kind="final", workers={"0": {}})
        exporter.close()
        payloads = [json.loads(line) for line in open(path)]
        assert [p["seq"] for p in payloads] == [1, 2]
        assert payloads[0]["metrics"]["c"][0]["value"] == 1
        assert payloads[1]["metrics"]["c"][0]["value"] == 10  # cumulative
        assert payloads[1]["kind"] == "final"

    def test_metrics_server_answers_prometheus_and_json(self):
        server = MetricsServer()
        try:
            registry = MetricsRegistry()
            registry.counter("hits").inc(4)
            server.publish({"schema": "x", "metrics": registry.snapshot()})

            def get(path):
                with socket.create_connection(
                    (server.host, server.port), timeout=5
                ) as conn:
                    conn.sendall(
                        f"GET {path} HTTP/1.0\r\n\r\n".encode("latin-1")
                    )
                    chunks = []
                    while True:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        chunks.append(chunk)
                return b"".join(chunks).decode("utf-8")

            text = get("/metrics")
            assert "200 OK" in text and "hits 4" in text
            raw = get("/metrics.json")
            body = raw.split("\r\n\r\n", 1)[1]
            assert json.loads(body)["metrics"]["hits"][0]["value"] == 4
            assert "404" in get("/somewhere-else")
        finally:
            server.close()


# -- the worker stream ---------------------------------------------------


class TestTelemetryStream:
    def _streamer(self, index=0, sink=None):
        instr = obs.Instrumentation(enabled=True)
        return (
            TelemetryStreamer(index, sink or queue.Queue(), obs=instr, interval=999),
            instr,
        )

    def test_payload_shape_matches_pool_reply_tuples(self):
        sink = queue.Queue()
        streamer, instr = self._streamer(index=3, sink=sink)
        instr.registry.counter("work").inc(2)
        streamer._tick()
        status, task, worker, payload = sink.get_nowait()
        assert (status, task, worker) == ("obs", 0, 3)
        assert payload["seq"] == 1 and payload["worker"] == 3
        assert payload["metrics"]["work"][0]["value"] == 2

    def test_idle_tick_sends_nothing(self):
        sink = queue.Queue()
        streamer, _ = self._streamer(sink=sink)
        streamer._tick()
        assert sink.empty()

    def test_trace_records_ship_incrementally(self):
        streamer, instr = self._streamer()
        with instr.tracer.span("one"):
            pass
        first = streamer.collect()
        assert [r["name"] for r in first["trace"]] == ["one"]
        with instr.tracer.span("two"):
            pass
        second = streamer.collect()
        assert [r["name"] for r in second["trace"]] == ["two"]

    def test_aggregator_merges_deltas_and_tracks_respawn(self):
        aggregator = LiveAggregator()
        streamer, instr = self._streamer(index=0)
        instr.registry.counter("cases").inc(5)
        aggregator.ingest(streamer.collect())
        # The worker dies; its replacement starts with a fresh registry
        # and a fresh streamer whose sequence restarts at 1.
        respawned, instr2 = self._streamer(index=0)
        instr2.registry.counter("cases").inc(2)
        aggregator.ingest(respawned.collect())
        view = aggregator.snapshot()
        assert view["metrics"]["cases"][0]["value"] == 7
        assert view["workers"]["0"]["restarts"] == 1

    def test_aggregator_drops_malformed_deltas_without_raising(self):
        aggregator = LiveAggregator()
        aggregator.ingest(
            {
                "worker": 0,
                "seq": 1,
                "metrics": {"c": [{"labels": {}, "kind": "counter", "value": -1}]},
                "trace": [],
            }
        )
        assert aggregator.dropped == 1
        assert aggregator.snapshot()["metrics"] == {}

    def test_thread_streams_over_a_real_queue(self):
        sink = queue.Queue()
        instr = obs.Instrumentation(enabled=True)
        streamer = TelemetryStreamer(1, sink, obs=instr, interval=0.02)
        streamer.start()
        instr.registry.counter("ticks").inc(9)
        deadline = threading.Event()
        deadline.wait(0.2)
        streamer.stop()
        total = 0
        while not sink.empty():
            message = sink.get_nowait()
            assert message[0] == "obs"
            for entry in message[3]["metrics"].get("ticks", []):
                total += entry["value"]
        assert total == 9

    def test_stream_interval_env_parsing(self):
        assert stream_interval({}) == 0.25
        assert stream_interval({"REPRO_OBS_INTERVAL": "1.5"}) == 1.5
        assert stream_interval({"REPRO_OBS_INTERVAL": "junk"}) == 0.25
        assert stream_interval({"REPRO_OBS_INTERVAL": "-2"}) == 0.25


# -- parallel equality with the plane on ---------------------------------


class TestParallelEquality:
    @pytest.mark.slow
    def test_sharded_run_with_exports_matches_serial(self, tmp_path, monkeypatch):
        export = str(tmp_path / "live.jsonl")
        instr = obs.enable()
        instr.registry.reset()
        run_all(seed=9, budget=80, engines=("fuzz",))
        serial = _counters(instr.registry)

        instr.registry.reset()
        monkeypatch.setenv("REPRO_OBS_EXPORT", export)  # workers inherit
        exporter = Exporter.from_env()
        run_all_parallel(
            workers=2, seed=9, budget=80, engines=("fuzz",), exporter=exporter
        )
        exporter.close()
        merged = _counters(instr.registry)

        # The authoritative merge is byte-identical with the plane on.
        assert merged == serial
        # ...and the export stream ends with that same final registry.
        payloads = load_export(export)
        finals = [p for p in payloads if p.get("kind") == "final"]
        assert finals
        final_registry = MetricsRegistry()
        final_registry.merge_snapshot(finals[-1]["metrics"])
        assert _counters(final_registry) == serial


# -- flight recorder -----------------------------------------------------


def _broken_spec():
    class LyingUInt(UInt):
        def decode(self, reader, env):
            value = super().decode(reader, env)
            return value ^ 1 if value > 7 else value

    return PacketSpec(
        "FlightRecDemo",
        fields=[
            LyingUInt("seq", bits=8),
            UInt("length", bits=8),
            Bytes("payload", length=this.length),
        ],
    )


class TestFlightRecorder:
    def test_unarmed_hooks_are_noops(self):
        assert flightrec.active_recorder() is None
        assert flightrec.record_crash("fuzz_bug_crash", data=b"x") is None
        flightrec.record_frame(b"x")  # must not raise

    def test_env_arms_the_recorder(self, tmp_path, monkeypatch):
        flightrec.reset_env_cache()
        monkeypatch.setenv("REPRO_OBS_FLIGHTREC", str(tmp_path))
        path = flightrec.record_crash("fuzz_bug_crash", subject="X", data=b"\x01")
        assert path is not None and os.path.dirname(path) == str(tmp_path)

    def test_bundle_round_trip_with_frame_ring(self, tmp_path):
        instr = obs.Instrumentation(enabled=True)
        instr.registry.counter("crashes").inc()
        with instr.tracer.span("fuzz"):
            pass
        recorder = flightrec.FlightRecorder(
            str(tmp_path), frame_capacity=2, obs=instr
        )
        for index in range(4):
            recorder.record_frame(bytes([index]), context=f"ch{index}")
        path = recorder.dump(
            "fuzz_bug_crash",
            subject="Demo",
            detail="boom",
            seed=7,
            data=b"\x01\x02",
            shrunk=b"\x01",
            extra={"engine": "fuzz"},
        )
        bundle = flightrec.load_bundle(path)
        assert bundle.kind == "fuzz_bug_crash"
        assert bundle.seed == 7
        assert bundle.reproducer() == b"\x01"  # shrunk wins
        assert [f["context"] for f in bundle.frames] == ["ch2", "ch3"]  # ring
        assert bundle.metrics["crashes"][0]["value"] == 1
        assert len(bundle.trace) == 1

    def test_fuzzer_crash_dumps_replayable_bundle(self, tmp_path, monkeypatch):
        """The acceptance check: an injected decoder bug must leave a
        bundle whose replay deterministically reproduces the failure."""
        broken = _broken_spec()
        entry = SpecEntry(broken, lambda rng: random_packet(broken, rng))
        flightrec.install_recorder(flightrec.FlightRecorder(str(tmp_path)))
        fuzzer = MutationFuzzer(
            entry, random.Random(0), CoverageMap(), corpus=Corpus(), seed=0
        )
        findings = fuzzer.run(300)
        assert any(f.outcome == BUG_NONVERBATIM for f in findings)
        bundles = [
            flightrec.load_bundle(os.path.join(str(tmp_path), name))
            for name in sorted(os.listdir(str(tmp_path)))
        ]
        nonverbatim = [
            b for b in bundles if b.kind == f"fuzz_{BUG_NONVERBATIM}"
        ]
        assert nonverbatim
        bundle = nonverbatim[0]
        assert bundle.seed == 0
        # Replay needs the spec in the registry; the broken demo spec
        # stands in for a real regression.
        import repro.conformance.registry as registry_module

        monkeypatch.setattr(
            registry_module, "all_spec_entries", lambda: [entry]
        )
        status, detail = flightrec.replay_bundle(bundle)
        assert status == "reproduced", detail
        # Deterministic: the same bundle replays the same way again.
        assert flightrec.replay_bundle(bundle)[0] == "reproduced"
        # And the classification itself is stable on the reproducer.
        assert classify(broken, bundle.reproducer())[0] == BUG_NONVERBATIM

    def test_fixed_bug_replays_as_drifted(self, tmp_path, monkeypatch):
        broken = _broken_spec()
        recorder = flightrec.FlightRecorder(str(tmp_path))
        packet = random_packet(broken, random.Random(0))
        wire = broken.encode(packet)
        path = recorder.dump(
            "fuzz_bug_nonverbatim", subject="FlightRecDemo", data=wire
        )
        # After the fix ships, the registry holds a spec whose decoder
        # no longer lies — replay then finds nothing wrong and reports
        # the drift instead of claiming reproduction.
        fixed = PacketSpec(
            "FlightRecDemo",
            fields=[
                UInt("seq", bits=8),
                UInt("length", bits=8),
                Bytes("payload", length=this.length),
            ],
        )
        fixed_entry = SpecEntry(fixed, lambda rng: random_packet(fixed, rng))
        import repro.conformance.registry as registry_module

        monkeypatch.setattr(
            registry_module, "all_spec_entries", lambda: [fixed_entry]
        )
        status, detail = flightrec.replay_bundle(flightrec.load_bundle(path))
        assert status == "drifted"
        assert "accept" in detail

    def test_operational_bundles_are_unreplayable(self, tmp_path):
        recorder = flightrec.FlightRecorder(str(tmp_path))
        path = recorder.dump("parallel_fallback", detail="worker 1 died")
        status, detail = flightrec.replay_bundle(flightrec.load_bundle(path))
        assert status == "unreplayable"

    def test_demotion_bundle_on_clean_spec_drifts(self, tmp_path):
        # A demotion bundle for a spec whose compiled tier agrees with
        # the interpreter replays clean: no divergence, status drifted.
        from repro.conformance.registry import all_spec_entries

        entry = next(e for e in all_spec_entries() if e.name == "ArqData")
        wire = entry.spec.encode(entry.generate(random.Random(0)))
        recorder = flightrec.FlightRecorder(str(tmp_path))
        path = recorder.dump(
            "fastpath_demotion",
            subject="ArqData",
            detail="decode-mismatch",
            data=wire,
            extra={"op": "decode", "reason": "decode-mismatch"},
        )
        status, detail = flightrec.replay_bundle(flightrec.load_bundle(path))
        assert status == "drifted", detail

    def test_capture_feeds_the_frame_ring(self, tmp_path):
        from repro.netsim import Simulator
        from repro.netsim.capture import Capture
        from repro.netsim.channel import Channel, ChannelConfig

        flightrec.install_recorder(flightrec.FlightRecorder(str(tmp_path)))
        sim = Simulator()
        channel = Channel(
            sim,
            ChannelConfig(),
            random.Random(0),
            deliver=lambda frame: None,
            name="a->b",
        )
        capture = Capture()
        capture.tap(channel)
        channel.send(b"\xaa\xbb")
        sim.run()
        path = flightrec.record_crash("fuzz_bug_crash", subject="X")
        bundle = flightrec.load_bundle(path)
        assert [f["data"] for f in bundle.frames] == ["aabb"]
        assert bundle.frames[0]["context"] == "a->b"


# -- the CLI surfaces ----------------------------------------------------


class TestCli:
    def _export_file(self, tmp_path):
        path = str(tmp_path / "export.jsonl")
        exporter = Exporter([JsonlSink(path)])
        registry = MetricsRegistry()
        registry.counter("frames").inc(5)
        exporter.publish(registry.snapshot(), kind="live")
        registry.counter("frames").inc(15)
        exporter.publish(registry.snapshot(), kind="final")
        return path

    def test_load_export_and_rates(self, tmp_path):
        payloads = load_export(self._export_file(tmp_path))
        assert len(payloads) == 2
        rates = "\n".join(render_rates(payloads[1], payloads[0]))
        assert "frames" in rates and "+      15" in rates
        frame = render_frame(payloads[1], payloads[0])
        assert "kind=final" in frame and "frames" in frame

    def test_report_command_renders_final_payload(self, tmp_path, capfd):
        from repro.obs.__main__ import main

        assert main(["report", self._export_file(tmp_path)]) == 0
        out = capfd.readouterr().out
        assert "frames" in out and "20" in out

    def test_top_no_follow_renders_existing_frames(self, tmp_path, capfd):
        from repro.obs.__main__ import main

        assert main(["top", self._export_file(tmp_path), "--no-follow"]) == 0
        out = capfd.readouterr().out
        assert out.count("repro.obs top") == 2

    def test_report_command_missing_payloads_fails(self, tmp_path):
        from repro.obs.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 1

    def test_conformance_triage_cli(self, tmp_path, capfd):
        from repro.conformance.__main__ import main

        recorder = flightrec.FlightRecorder(str(tmp_path))
        path = recorder.dump("parallel_fallback", detail="pool wedged")
        assert main(["--triage", path]) == 1  # unreplayable != reproduced
        out = capfd.readouterr().out
        assert "UNREPLAYABLE" in out
