"""Property tests for the serving plane's hashed timer wheel.

The wheel promises exact accounting under any interleaving of
schedule, cancel, and advance:

* ``pending`` always equals the number of scheduled-but-unfired,
  uncancelled entries;
* a cancelled entry never fires, no matter how the wheel's slots wrap;
* nothing fires early — an entry's callback runs only once the clock
  has passed its deadline (bounded lateness: at most one tick);
* within one ``advance`` call, entries fire in (deadline, seq) order;
* cancelling twice, or cancelling a fired entry, is a reported no-op.

Hypothesis drives random interleavings and checks the invariants after
every step, mirroring the simulator's cancel/timer accounting net in
``test_netsim_properties.py`` — the wheel is the serving plane's
equivalent of the simulator's event heap, and earns the same scrutiny.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.arq import ARQ_PACKET
from repro.serve.manager import SessionManager
from repro.serve.wheel import TimerWheel, WheelTimer

TICK = 0.01

# One step of an interleaving: (op, a, b) where the integers parameterize
# the op (delay choice, victim index, advance step).
_steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["schedule", "cancel", "advance", "double_cancel", "reentrant"]
        ),
        st.integers(0, 7),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=60,
)


class _Model:
    """Reference bookkeeping mirrored alongside the real wheel."""

    def __init__(self):
        self.wheel = TimerWheel(tick=TICK, slots=8, now=0.0)  # tiny: wraps often
        self.now = 0.0
        self.entries = []  # (handle, deadline) for every schedule ever made
        self.fired = []  # (advance_id, deadline, seq) in callback order
        self.advance_id = 0

    def schedule(self, delay):
        cell = {}

        def on_fire():
            handle = cell["handle"]
            self.fired.append((self.advance_id, handle.deadline, handle.seq))

        handle = self.wheel.schedule(delay, on_fire)
        cell["handle"] = handle
        self.entries.append((handle, self.now + delay))
        return handle

    def advance(self, now):
        self.advance_id += 1
        self.now = now
        before = len(self.fired)
        self.wheel.advance(now)
        return self.fired[before:]

    def live(self):
        return [(h, d) for h, d in self.entries if h.live]


class TestWheelAccounting:
    @given(steps=_steps)
    @settings(max_examples=200, deadline=None)
    def test_interleavings_preserve_accounting(self, steps):
        model = _Model()
        wheel = model.wheel
        for op, a, b in steps:
            if op == "schedule":
                model.schedule(a * 0.0137)  # 0 .. ~10 ticks, off-boundary
            elif op in ("cancel", "double_cancel"):
                if model.entries:
                    victim, _ = model.entries[a % len(model.entries)]
                    was_live = victim.live
                    assert wheel.cancel(victim) == was_live
                    if op == "double_cancel":
                        assert wheel.cancel(victim) is False
            elif op == "advance":
                burst = model.advance(model.now + b * 0.0171)
                # In-order firing within one advance call.
                assert burst == sorted(burst, key=lambda f: (f[1], f[2]))
            elif op == "reentrant":
                # Callbacks that schedule and cancel while the wheel is
                # mid-advance must not corrupt accounting.
                if model.entries:
                    victim, _ = model.entries[a % len(model.entries)]
                    wheel.schedule(0.0, lambda v=victim: wheel.cancel(v))
                    model.advance(model.now + TICK)
            # The core invariants, after every operation.  live() reads
            # the real handles' fired/cancelled flags, so every tracked
            # entry the wheel still owes us is counted — helper entries
            # from the reentrant op have already fired and cost nothing.
            assert wheel.pending == len(model.live())
            # A handle is never both cancelled and fired.
            for handle, _ in model.entries:
                assert not (handle.cancelled and handle.fired)
            # Never early: every fired entry's deadline has passed.
            for _, deadline, _ in model.fired:
                assert deadline <= model.now + 1e-9
            # Bounded lateness: anything due more than a tick ago is done.
            for _, deadline in model.live():
                assert deadline > model.now - TICK - 1e-9

    @given(
        delays=st.lists(st.floats(0.0, 0.5), min_size=1, max_size=30),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_cancelled_entries_never_fire(self, delays, cancel_mask):
        wheel = TimerWheel(tick=TICK, slots=16, now=0.0)
        fired = []
        handles = [
            wheel.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        cancelled = set()
        for i, (handle, kill) in enumerate(zip(handles, cancel_mask)):
            if kill:
                wheel.cancel(handle)
                cancelled.add(i)
        wheel.advance(1.0)  # everything due
        assert set(fired).isdisjoint(cancelled)
        assert set(fired) == set(range(len(delays))) - cancelled
        assert wheel.pending == 0
        assert wheel.fired_total == len(delays) - len(cancelled)
        assert wheel.cancelled_total == len(cancelled)

    @given(delay=st.floats(0.001, 1.0), fraction=st.floats(0.0, 0.999))
    @settings(max_examples=200, deadline=None)
    def test_never_fires_before_deadline(self, delay, fraction):
        wheel = TimerWheel(tick=TICK, slots=8, now=0.0)
        fired = []
        wheel.schedule(delay, lambda: fired.append(True))
        wheel.advance(delay * fraction)
        assert not fired  # strictly before the deadline: silent
        wheel.advance(delay + TICK)  # one tick of slack: must have fired
        assert fired


class TestWheelTimer:
    def test_restart_supersedes_previous_deadline(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        fired = []
        timer = WheelTimer(wheel, 0.05, lambda: fired.append(True), name="t")
        timer.start()
        timer.start(0.2)  # re-arm further out; the old entry is dead
        wheel.advance(0.1)
        assert not fired
        wheel.advance(0.25)
        assert fired == [True]

    def test_stop_prevents_firing(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        fired = []
        timer = WheelTimer(wheel, 0.05, lambda: fired.append(True), name="t")
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
        wheel.advance(1.0)
        assert not fired

    def test_fire_clears_running(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        timer = WheelTimer(wheel, 0.05, lambda: None, name="t")
        timer.start()
        wheel.advance(0.1)
        assert not timer.running


# ---------------------------------------------------------------------------
# The shared wheel: many session managers, one clock source
# ---------------------------------------------------------------------------

_ARQ_FRAME = ARQ_PACKET.encode(ARQ_PACKET.make(seq=0, length=2, payload=b"hi"))


class _TwoManagerRig:
    """Two session managers riding one wheel, the live Server topology."""

    def __init__(self, idle_a=1.0, idle_b=1.0, **kwargs):
        self.now = 0.0
        self.wheel = TimerWheel(tick=TICK, slots=8, now=0.0)  # tiny: wraps
        clock = lambda: self.now  # noqa: E731 - shared by both managers
        self.a = SessionManager(
            "arq", wheel=self.wheel, clock=clock, idle_timeout=idle_a, **kwargs
        )
        self.b = SessionManager(
            "arq", wheel=self.wheel, clock=clock, idle_timeout=idle_b, **kwargs
        )
        self.sink = []

    def offer(self, manager, peer):
        manager.frame_from(peer, _ARQ_FRAME, self.sink.append)

    def tick(self, dt):
        self.now += dt
        self.wheel.advance(self.now)


class TestSharedWheelAcrossManagers:
    def test_fire_order_follows_each_managers_timeout(self):
        rig = _TwoManagerRig(idle_a=1.0, idle_b=2.0)
        rig.offer(rig.a, "pa")
        rig.offer(rig.b, "pb")
        assert rig.wheel.pending == 2  # both idle timers on one wheel
        rig.tick(1.05)
        assert "pa" not in rig.a.sessions  # a's shorter timeout fired
        assert "pb" in rig.b.sessions
        rig.tick(1.0)  # now 2.05
        assert "pb" not in rig.b.sessions
        assert (rig.a.closed_total, rig.b.closed_total) == (1, 1)

    def test_cancel_isolation_between_managers(self):
        rig = _TwoManagerRig()
        rig.offer(rig.a, "pa")
        rig.offer(rig.b, "pb")
        rig.tick(0.5)
        rig.a.close("pa")  # cancels a's wheel entry only
        rig.tick(0.6)  # now 1.1: b's deadline passed
        assert "pb" not in rig.b.sessions  # b still fired on time
        assert rig.a.closed_total == 1  # the explicit close, no double
        assert rig.b.closed_total == 1
        assert rig.wheel.pending == 0

    def test_reentrant_rearm_during_anothers_fire(self):
        # Both managers' idle entries land in the same advance; a's
        # session saw activity, so its callback re-schedules into the
        # wheel *while the wheel is mid-fire* of b's close.  The lazy
        # re-arm must neither be lost nor corrupt the batch.
        rig = _TwoManagerRig()
        rig.offer(rig.a, "pa")
        rig.offer(rig.b, "pb")
        rig.tick(0.5)
        rig.offer(rig.a, "pa")  # refresh a only (no wheel traffic)
        rig.tick(0.55)  # now 1.05: both entries due in one advance
        assert "pa" in rig.a.sessions  # re-armed for the remainder
        assert "pb" not in rig.b.sessions  # reaped in the same batch
        assert rig.wheel.pending == 1  # exactly the re-armed entry
        rig.tick(0.5)  # now 1.55 >= 0.5 + 1.0
        assert "pa" not in rig.a.sessions

    def test_many_managers_batch_on_one_advance(self):
        rig = _TwoManagerRig()
        extra = SessionManager(
            "arq",
            wheel=rig.wheel,
            clock=lambda: rig.now,
            idle_timeout=1.0,
        )
        for manager in (rig.a, rig.b, extra):
            for index in range(5):
                rig.offer(manager, f"m{id(manager)}:{index}")
        assert rig.wheel.pending == 15
        rig.tick(1.05)  # one advance reaps every manager's sessions
        assert rig.a.stats()["active"] == 0
        assert rig.b.stats()["active"] == 0
        assert extra.stats()["active"] == 0
        assert rig.wheel.pending == 0


# One step of a recycling interleaving over a tiny peer namespace, so
# slots are reused constantly while stale idle entries linger in the
# wheel: (op, peer_index, advance_step).
_recycle_steps = st.lists(
    st.tuples(
        st.sampled_from(["open", "touch", "close", "advance"]),
        st.integers(0, 3),
        st.integers(0, 4),
    ),
    min_size=1,
    max_size=50,
)


class TestSlotRecyclingNeverMisfires:
    @given(steps=_recycle_steps)
    @settings(max_examples=150, deadline=None)
    def test_stale_idle_checks_never_reap_a_fresh_occupant(self, steps):
        """Slot recycling + lingering wheel entries never close early.

        Four peers churn through open/touch/close against a manager
        whose slots are recycled on every close, so the wheel keeps
        entries armed for dead generations of the same slot.  The
        property: a session is only ever reaped after a full
        ``idle_timeout`` of genuine silence — a stale generation's
        entry firing into a reused slot must never shorten the new
        occupant's life.
        """
        timeout = 0.1
        now = [0.0]
        wheel = TimerWheel(tick=TICK, slots=4, now=0.0)
        manager = SessionManager(
            "arq",
            wheel=wheel,
            clock=lambda: now[0],
            idle_timeout=timeout,
            max_sessions=16,  # never sheds: every close is ours or idle
        )
        sink = []
        last_activity = {}  # peer -> last time WE gave it traffic
        for op, index, step in steps:
            peer = f"p{index}"
            if op in ("open", "touch"):
                manager.frame_from(peer, _ARQ_FRAME, sink.append)
                last_activity[peer] = now[0]
            elif op == "close":
                if manager.close(peer) is not None:
                    last_activity.pop(peer, None)
            elif op == "advance":
                now[0] += step * 0.0137  # 0 .. ~5.5 ticks, off-boundary
                wheel.advance(now[0])
            # The property, after every step: nothing we kept active
            # within the timeout window has been reaped.
            for p, t in last_activity.items():
                if now[0] - t < timeout - 1e-9:
                    assert p in manager.sessions, (
                        f"{p} reaped after only {now[0] - t:.4f}s idle "
                        f"(timeout {timeout}); stale idle-check leaked "
                        "into a recycled slot"
                    )
            # Reaped peers were genuinely idle for at least the timeout.
            for p in list(last_activity):
                if p not in manager.sessions:
                    assert now[0] - last_activity[p] >= timeout - 1e-9
                    del last_activity[p]
            # Accounting never drifts.
            stats = manager.stats()
            assert stats["opened"] == stats["active"] + stats["closed"]
            assert stats["active"] == len(manager.sessions)
