"""Property tests for the serving plane's hashed timer wheel.

The wheel promises exact accounting under any interleaving of
schedule, cancel, and advance:

* ``pending`` always equals the number of scheduled-but-unfired,
  uncancelled entries;
* a cancelled entry never fires, no matter how the wheel's slots wrap;
* nothing fires early — an entry's callback runs only once the clock
  has passed its deadline (bounded lateness: at most one tick);
* within one ``advance`` call, entries fire in (deadline, seq) order;
* cancelling twice, or cancelling a fired entry, is a reported no-op.

Hypothesis drives random interleavings and checks the invariants after
every step, mirroring the simulator's cancel/timer accounting net in
``test_netsim_properties.py`` — the wheel is the serving plane's
equivalent of the simulator's event heap, and earns the same scrutiny.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.wheel import TimerWheel, WheelTimer

TICK = 0.01

# One step of an interleaving: (op, a, b) where the integers parameterize
# the op (delay choice, victim index, advance step).
_steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["schedule", "cancel", "advance", "double_cancel", "reentrant"]
        ),
        st.integers(0, 7),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=60,
)


class _Model:
    """Reference bookkeeping mirrored alongside the real wheel."""

    def __init__(self):
        self.wheel = TimerWheel(tick=TICK, slots=8, now=0.0)  # tiny: wraps often
        self.now = 0.0
        self.entries = []  # (handle, deadline) for every schedule ever made
        self.fired = []  # (advance_id, deadline, seq) in callback order
        self.advance_id = 0

    def schedule(self, delay):
        cell = {}

        def on_fire():
            handle = cell["handle"]
            self.fired.append((self.advance_id, handle.deadline, handle.seq))

        handle = self.wheel.schedule(delay, on_fire)
        cell["handle"] = handle
        self.entries.append((handle, self.now + delay))
        return handle

    def advance(self, now):
        self.advance_id += 1
        self.now = now
        before = len(self.fired)
        self.wheel.advance(now)
        return self.fired[before:]

    def live(self):
        return [(h, d) for h, d in self.entries if h.live]


class TestWheelAccounting:
    @given(steps=_steps)
    @settings(max_examples=200, deadline=None)
    def test_interleavings_preserve_accounting(self, steps):
        model = _Model()
        wheel = model.wheel
        for op, a, b in steps:
            if op == "schedule":
                model.schedule(a * 0.0137)  # 0 .. ~10 ticks, off-boundary
            elif op in ("cancel", "double_cancel"):
                if model.entries:
                    victim, _ = model.entries[a % len(model.entries)]
                    was_live = victim.live
                    assert wheel.cancel(victim) == was_live
                    if op == "double_cancel":
                        assert wheel.cancel(victim) is False
            elif op == "advance":
                burst = model.advance(model.now + b * 0.0171)
                # In-order firing within one advance call.
                assert burst == sorted(burst, key=lambda f: (f[1], f[2]))
            elif op == "reentrant":
                # Callbacks that schedule and cancel while the wheel is
                # mid-advance must not corrupt accounting.
                if model.entries:
                    victim, _ = model.entries[a % len(model.entries)]
                    wheel.schedule(0.0, lambda v=victim: wheel.cancel(v))
                    model.advance(model.now + TICK)
            # The core invariants, after every operation.  live() reads
            # the real handles' fired/cancelled flags, so every tracked
            # entry the wheel still owes us is counted — helper entries
            # from the reentrant op have already fired and cost nothing.
            assert wheel.pending == len(model.live())
            # A handle is never both cancelled and fired.
            for handle, _ in model.entries:
                assert not (handle.cancelled and handle.fired)
            # Never early: every fired entry's deadline has passed.
            for _, deadline, _ in model.fired:
                assert deadline <= model.now + 1e-9
            # Bounded lateness: anything due more than a tick ago is done.
            for _, deadline in model.live():
                assert deadline > model.now - TICK - 1e-9

    @given(
        delays=st.lists(st.floats(0.0, 0.5), min_size=1, max_size=30),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_cancelled_entries_never_fire(self, delays, cancel_mask):
        wheel = TimerWheel(tick=TICK, slots=16, now=0.0)
        fired = []
        handles = [
            wheel.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        cancelled = set()
        for i, (handle, kill) in enumerate(zip(handles, cancel_mask)):
            if kill:
                wheel.cancel(handle)
                cancelled.add(i)
        wheel.advance(1.0)  # everything due
        assert set(fired).isdisjoint(cancelled)
        assert set(fired) == set(range(len(delays))) - cancelled
        assert wheel.pending == 0
        assert wheel.fired_total == len(delays) - len(cancelled)
        assert wheel.cancelled_total == len(cancelled)

    @given(delay=st.floats(0.001, 1.0), fraction=st.floats(0.0, 0.999))
    @settings(max_examples=200, deadline=None)
    def test_never_fires_before_deadline(self, delay, fraction):
        wheel = TimerWheel(tick=TICK, slots=8, now=0.0)
        fired = []
        wheel.schedule(delay, lambda: fired.append(True))
        wheel.advance(delay * fraction)
        assert not fired  # strictly before the deadline: silent
        wheel.advance(delay + TICK)  # one tick of slack: must have fired
        assert fired


class TestWheelTimer:
    def test_restart_supersedes_previous_deadline(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        fired = []
        timer = WheelTimer(wheel, 0.05, lambda: fired.append(True), name="t")
        timer.start()
        timer.start(0.2)  # re-arm further out; the old entry is dead
        wheel.advance(0.1)
        assert not fired
        wheel.advance(0.25)
        assert fired == [True]

    def test_stop_prevents_firing(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        fired = []
        timer = WheelTimer(wheel, 0.05, lambda: fired.append(True), name="t")
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
        wheel.advance(1.0)
        assert not fired

    def test_fire_clears_running(self):
        wheel = TimerWheel(tick=TICK, now=0.0)
        timer = WheelTimer(wheel, 0.05, lambda: None, name="t")
        timer.start()
        wheel.advance(0.1)
        assert not timer.running
