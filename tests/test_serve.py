"""The serving plane: real sockets, sessions, and the differential oracle.

Four layers of scrutiny, cheapest first:

1. unit tests for stream framing and exchange records (pure functions);
2. the session manager driven synchronously — demux, bounded queues,
   oldest-idle shedding, idle reaping — with a hand-advanced clock and
   wheel, no sockets;
3. the loopback differential: DSL clients against a recording server on
   real 127.0.0.1 UDP, with seeded loss/duplication/reorder injected on
   both legs, every recorded exchange replayed through the netsim
   oracle (byte equivalence) and every machine trace dual-stepped
   against ``modelcheck.successors_of`` (final-state agreement);
4. interop: the hand-rolled baseline blocking client (``repro.baseline``)
   conversing with the DSL server over UDP and over TCP, where the
   length-prefix stream framing earns its keep.

The 5000-session soak (shed threshold 4000) lives behind the ``slow``
marker with the other long lanes; the slab rewrite's regression tests
(slot recycling, frozen views, stale-drain fences, bounded bookkeeping)
ride layer 2.
"""

import asyncio
import io
import threading

import pytest

from repro.baseline.sockets_arq import BlockingArqClient
from repro.core.machine import Machine
from repro.modelcheck.explicit import successors_of
from repro.protocols.arq import ARQ_PACKET, build_receiver_spec
from repro.serve.apps import ArqResponderApp, build_app
from repro.serve.framing import FramingError, StreamDeframer, encode_frame
from repro.serve.loopback import (
    LoopbackConfig,
    client_messages,
    run_loopback_sync,
)
from repro.serve.manager import SessionManager, session_seed
from repro.serve.record import (
    ExchangeRecord,
    ExchangeRecorder,
    load_records,
    save_records,
)
from repro.serve.replay import check_trace_against_model, replay_records
from repro.serve.transport import ServeConfig, Server
from repro.serve.wheel import TimerWheel


# ---------------------------------------------------------------------------
# Layer 1: framing and records
# ---------------------------------------------------------------------------


class TestStreamFraming:
    def test_roundtrip_across_arbitrary_chunking(self):
        frames = [b"a", b"hello world", bytes(range(256)), b"x" * 1000]
        wire = b"".join(encode_frame(f) for f in frames)
        for chunk_size in (1, 2, 3, 7, 64, len(wire)):
            deframer = StreamDeframer()
            out = []
            for start in range(0, len(wire), chunk_size):
                out.extend(deframer.feed(wire[start : start + chunk_size]))
            assert out == frames
            assert deframer.buffered == 0

    def test_zero_length_prefix_rejected(self):
        deframer = StreamDeframer()
        with pytest.raises(FramingError):
            deframer.feed(b"\x00\x00")

    def test_oversize_frame_rejected(self):
        deframer = StreamDeframer(max_frame=16)
        with pytest.raises(FramingError):
            deframer.feed(encode_frame(b"y" * 17))

    def test_empty_frame_cannot_be_encoded(self):
        with pytest.raises(FramingError):
            encode_frame(b"")


class TestExchangeRecords:
    def _record(self):
        clock_value = [10.0]
        recorder = ExchangeRecorder(
            "arq", "peer:1", clock=lambda: clock_value[0], seed=7,
            params={"window": 4},
        )
        recorder.frame_in(b"\x01\x02")
        clock_value[0] = 10.5
        recorder.frame_out(b"\x03")
        return recorder.record

    def test_roundtrip_through_jsonl(self):
        record = self._record()
        stream = io.StringIO()
        assert save_records([record], stream) == 1
        stream.seek(0)
        loaded = load_records(stream)
        assert len(loaded) == 1
        back = loaded[0]
        assert back.protocol == "arq"
        assert back.seed == 7
        assert back.params == {"window": 4}
        assert [e.data for e in back.inbound()] == [b"\x01\x02"]
        assert [e.data for e in back.outbound()] == [b"\x03"]

    def test_times_are_relative_and_monotonic(self):
        record = self._record()
        script = record.inbound_script()
        assert script == [(0.0, b"\x01\x02")]
        assert record.outbound()[0].time == pytest.approx(0.5)

    def test_transcript_renders_every_event(self):
        record = self._record()
        text = record.transcript(specs=[ARQ_PACKET])
        assert text.count("\n") == 1  # two events, one line each
        assert "->" in text and "<-" in text


# ---------------------------------------------------------------------------
# Layer 2: the session manager, synchronously
# ---------------------------------------------------------------------------


class _Harness:
    """Manager + hand clock + wheel + outbound capture, no sockets."""

    def __init__(self, **kwargs):
        self.now = 0.0
        self.wheel = TimerWheel(tick=0.01, now=0.0)
        self.sent = {}  # peer -> [frames]
        kwargs.setdefault("protocol", "arq")
        self.manager = SessionManager(
            wheel=self.wheel, clock=lambda: self.now, **kwargs
        )

    def offer(self, peer, data):
        return self.manager.frame_from(
            peer, data, self.sent.setdefault(peer, []).append
        )

    def tick(self, dt):
        self.now += dt
        self.wheel.advance(self.now)


def _data_frame(seq, payload=b"hi"):
    packet = ARQ_PACKET.make(seq=seq, length=len(payload), payload=payload)
    return ARQ_PACKET.encode(packet)


class TestSessionManager:
    def test_demux_by_peer_and_ack_flow(self):
        h = _Harness()
        h.offer("a", _data_frame(0, b"from-a"))
        h.offer("b", _data_frame(0, b"from-b"))
        assert len(h.manager.sessions) == 2
        assert len(h.sent["a"]) == 1 and len(h.sent["b"]) == 1
        apps = {p: s.app for p, s in h.manager.sessions.items()}
        assert apps["a"].delivered == [b"from-a"]
        assert apps["b"].delivered == [b"from-b"]

    def test_per_peer_seed_is_deterministic_and_distinct(self):
        assert session_seed(1, "a") == session_seed(1, "a")
        assert session_seed(1, "a") != session_seed(1, "b")
        assert session_seed(1, "a") != session_seed(2, "a")

    def test_bounded_queue_drops_and_counts(self):
        # Deferred drain: frames pile up in the queue until flushed.
        pending = []
        h = _Harness(max_queue=2, defer=pending.append)
        for seq in range(4):
            admission = h.offer("a", _data_frame(seq))
        assert not admission.accepted  # the queue filled at 2
        assert h.manager.drop_total == 2
        assert h.manager.sessions["a"].drops == 2
        for drain in pending:
            drain()
        # Only the queued frames were consumed.
        assert h.manager.sessions["a"].app.frames_in == 2

    def test_congestion_resume_fires_when_queue_drains(self):
        pending = []
        h = _Harness(max_queue=1, defer=pending.append)
        h.offer("a", _data_frame(0))
        admission = h.offer("a", _data_frame(1))
        assert admission.congested
        resumed = []
        admission.session.resume = lambda: resumed.append(True)
        for drain in pending:
            drain()
        assert resumed == [True]
        assert not h.manager.sessions["a"].congested

    def test_shed_oldest_idle_at_capacity(self):
        h = _Harness(max_sessions=3)
        for index, peer in enumerate(["a", "b", "c"]):
            h.tick(0.1)
            h.offer(peer, _data_frame(0))
        h.tick(0.1)
        h.offer("b", _data_frame(1))  # refresh b: now a is oldest-idle
        h.tick(0.1)
        h.offer("d", _data_frame(0))  # at capacity: someone must go
        assert set(h.manager.sessions) == {"b", "c", "d"}  # a was shed
        assert h.manager.shed_total == 1
        assert h.manager.stats()["shed"] == 1

    def test_idle_reaping_fires_protocol_timer_then_closes(self):
        h = _Harness(protocol="handshake", idle_timeout=1.0)
        # A half-open handshake: SYN consumed, ACK never arrives.
        from repro.protocols.handshake import HANDSHAKE_PACKET, MSG_SYN

        syn = HANDSHAKE_PACKET.make(
            msg_type=MSG_SYN, initiator_nonce=42, responder_nonce=0
        )
        h.offer("a", HANDSHAKE_PACKET.encode(syn))
        app = h.manager.sessions["a"].app
        assert app.machine.in_state("SynReceived")
        h.tick(1.05)
        assert "a" not in h.manager.sessions  # reaped
        assert app.machine.in_state("Listen")  # RESET ran before the close
        assert h.manager.stats()["closed"] == 1

    def test_activity_postpones_idle_reaping(self):
        h = _Harness(idle_timeout=1.0)
        h.offer("a", _data_frame(0))
        h.tick(0.8)
        h.offer("a", _data_frame(1))  # fresh activity
        h.tick(0.8)  # the original deadline passes; the session survives
        assert "a" in h.manager.sessions
        h.tick(1.0)
        assert "a" not in h.manager.sessions

    def test_records_collected_across_close(self):
        h = _Harness(record=True)
        h.offer("a", _data_frame(0))
        h.manager.close("a", reason="test")
        records = h.manager.collect_records()
        assert len(records) == 1
        assert len(records[0].inbound()) == 1
        assert len(records[0].outbound()) == 1  # the ack


class TestSlabStorage:
    """The slab rewrite's contract: density without observable change."""

    def test_slot_recycling_bounds_the_arena(self):
        # 200 peers churn through one-at-a-time; the slab never grows
        # past peak concurrency and close() leaves no per-peer residue
        # (the PR 7 _drain_scheduled dict leaked one entry per peer ever
        # seen — this is its regression test).
        h = _Harness()
        for index in range(200):
            peer = f"peer:{index}"
            h.offer(peer, _data_frame(0))
            h.manager.close(peer)
        assert h.manager.slab.capacity == 1  # one slot, recycled 200x
        assert len(h.manager._drain_tasks) == 1
        assert len(h.manager._idle_tasks) == 1
        assert not hasattr(h.manager, "_drain_scheduled")
        assert h.manager.stats() == {
            "active": 0,
            "opened": 200,
            "closed": 200,
            "shed": 0,
            "queue_drops": 0,
        }

    def test_shed_heap_tombstones_are_compacted(self):
        # Normal closes leave lazy tombstones in the oldest-idle heap;
        # churning thousands of sessions must not accumulate them.
        h = _Harness()
        for index in range(2000):
            peer = f"peer:{index}"
            h.offer(peer, _data_frame(0))
            h.manager.close(peer)
        assert len(h.manager._idle_heap) <= 32  # live(0) + slack, not 2000

    def test_closed_view_is_frozen_against_slot_reuse(self):
        h = _Harness()
        h.offer("a", _data_frame(0, b"from-a"))
        view_a = h.manager.sessions["a"]
        slot_a = view_a.slot
        h.manager.close("a")
        assert view_a.closed
        # The slot is recycled by the next session...
        h.offer("b", _data_frame(0, b"from-b"))
        view_b = h.manager.sessions["b"]
        assert view_b.slot == slot_a
        # ...but the frozen view still answers for its own session.
        assert view_a.peer == "a"
        assert view_a.app.delivered == [b"from-a"]
        assert view_b.app.delivered == [b"from-b"]
        assert not view_b.closed

    def test_stale_drain_never_touches_a_retired_slot(self):
        # A drain deferred for session a fires after a was closed: the
        # generation fence must discard it (the slot's arrays are
        # cleared; touching them would be an AttributeError on None).
        pending = []
        h = _Harness(defer=pending.append)
        h.offer("a", _data_frame(0))
        h.manager.close("a")  # a's drain is still queued in `pending`
        (stale,) = pending
        stale()  # must be a silent no-op
        assert h.manager.stats()["active"] == 0

    def test_drain_across_slot_reuse_delivers_exactly_once(self):
        # The drain callback is slot-level and idempotent: when a's
        # stale drain fires after b recycled the slot, it runs b's
        # pending drain early — and the second firing is a no-op, so
        # delivery stays exactly-once in order.
        pending = []
        h = _Harness(defer=pending.append)
        h.offer("a", _data_frame(0))
        h.manager.close("a")
        h.offer("b", _data_frame(0, b"for-b"))
        assert h.manager.sessions["b"].slot == 0  # recycled slot
        for drain in pending:
            drain()
        assert h.manager.sessions["b"].app.delivered == [b"for-b"]
        assert h.manager.sessions["b"].app.frames_in == 1

    def test_send_captured_at_open_only(self):
        # frame_from ignores `send` for existing sessions (documented:
        # transports pass one long-lived object, not per-frame closures).
        h = _Harness()
        first, second = [], []
        h.manager.frame_from("a", _data_frame(0), first.append)
        h.manager.frame_from("a", _data_frame(1), second.append)
        assert len(first) == 2  # both acks went out the open-time send
        assert second == []

    def test_send_factory_is_invoked_once_per_session(self):
        from repro.serve.manager import SendFactory

        built = []
        sent = []

        def build(peer):
            built.append(peer)
            return sent.append

        factory = SendFactory(build)
        h = _Harness()
        h.manager.frame_from("a", _data_frame(0), factory)
        h.manager.frame_from("a", _data_frame(1), factory)
        h.manager.frame_from("b", _data_frame(0), factory)
        assert built == ["a", "b"]  # once per open, never per frame
        assert len(sent) == 3  # every frame was acked


# ---------------------------------------------------------------------------
# Layer 3: the loopback differential
# ---------------------------------------------------------------------------

_CLEAN = dict(clients=3, messages=4, payload_size=16, rto=0.08)
_IMPAIRED = dict(
    clients=3,
    messages=4,
    payload_size=16,
    rto=0.08,
    loss_rate=0.15,
    duplication_rate=0.1,
    reorder_rate=0.1,
    client_timeout=30.0,
)


def _assert_differential_clean(report):
    assert report.clients_ok, report.clients
    assert report.differential is not None
    assert report.differential.results, "no exchanges were recorded"
    for result in report.differential.results:
        assert result.divergences == [], result.summary()
        assert result.model_notes == [], result.summary()
    assert report.ok


class TestLoopbackDifferential:
    @pytest.mark.parametrize("protocol", ["arq", "handshake", "sliding"])
    def test_clean_channel(self, protocol):
        report = run_loopback_sync(
            LoopbackConfig(protocol=protocol, seed=101, **_CLEAN)
        )
        _assert_differential_clean(report)

    @pytest.mark.parametrize("protocol", ["arq", "handshake", "sliding"])
    def test_lossy_reordering_channel(self, protocol):
        report = run_loopback_sync(
            LoopbackConfig(protocol=protocol, seed=202, **_IMPAIRED)
        )
        _assert_differential_clean(report)
        # Impairment must actually have happened for this to mean much:
        # retransmissions on at least one client across the batch.
        assert any(c["retransmissions"] > 0 for c in report.clients) or any(
            c["frames_sent"] > _IMPAIRED["messages"] for c in report.clients
        )

    def test_offline_replay_from_saved_records(self):
        report = run_loopback_sync(
            LoopbackConfig(protocol="arq", seed=303, **_CLEAN)
        )
        stream = io.StringIO()
        save_records(report.records, stream)
        stream.seek(0)
        differential = replay_records(load_records(stream))
        assert differential.ok
        assert differential.summary()["records"] == len(
            [r for r in report.records if r.events]
        )

    def test_divergence_is_detected_not_assumed(self):
        # Corrupt one recorded outbound frame: the oracle must notice.
        report = run_loopback_sync(
            LoopbackConfig(protocol="arq", seed=404, **_CLEAN)
        )
        record = next(r for r in report.records if r.outbound())
        victim = record.outbound()[0]
        mutated = ExchangeRecord(
            protocol=record.protocol,
            peer=record.peer,
            seed=record.seed,
            params=record.params,
            events=[
                type(e)(e.time, e.direction, b"\xff" + e.data[1:])
                if e is victim
                else e
                for e in record.events
            ],
        )
        differential = replay_records([mutated])
        assert not differential.ok
        assert differential.results[0].divergences


class TestModelDualStep:
    def test_executed_trace_agrees_with_successors_of(self):
        app = build_app("arq", send=lambda data: None, seed=0)
        app.on_frame(_data_frame(0, b"one"))
        app.on_frame(_data_frame(0, b"one"))  # duplicate -> DUP_ACK
        app.on_frame(_data_frame(1, b"two"))
        assert app.delivered == [b"one", b"two"]
        assert app.machine.trace  # RECV, DUP_ACK, RECV
        assert check_trace_against_model(app.machine) == []

    def test_successors_of_pins_the_exact_target(self):
        # Direct use of the model semantics: from Expect(0), RECV admits
        # exactly Expect(1) — the dual-step has no wiggle room.
        spec = build_receiver_spec()
        machine = Machine(spec)
        verified = ARQ_PACKET.try_parse(_data_frame(0))
        machine.exec_trans("RECV", verified)
        step = machine.trace[0]
        targets, approximated = successors_of(
            spec, spec.transition_named("RECV"), step.source
        )
        if not approximated:
            keys = {(t.state.name, t.values) for t in targets}
            assert (step.target.state.name, step.target.values) in keys

    def test_dual_step_flags_a_forged_trace(self):
        # CONNECT has no payload-dependent guard, so the model's answer
        # is exact (never approximated): from Closed with nonce=5 the
        # only admissible target is SynSent(5).  A forged step claiming
        # otherwise must be flagged.
        from repro.protocols.handshake import build_initiator_spec

        machine = Machine(build_initiator_spec())
        machine.exec_trans("CONNECT", nonce=5)
        step = machine.trace[0]
        assert check_trace_against_model(machine) == []  # honest trace
        forged = type(step)(
            transition=step.transition,
            source=step.source,
            target=step.source,  # claims CONNECT left the state unchanged
            bindings=step.bindings,
        )

        class _Forged:
            spec = machine.spec
            trace = (forged,)

        notes = check_trace_against_model(_Forged())
        assert notes and "admits only" in notes[0]


# ---------------------------------------------------------------------------
# Layer 4: baseline interop over real sockets
# ---------------------------------------------------------------------------


class TestBaselineInterop:
    def _run(self, kind):
        async def main():
            server = await Server.start(
                ServeConfig(protocol="arq", kind=kind, idle_timeout=10.0)
            )
            port = server.udp_port if kind == "udp" else server.tcp_port
            payloads = [b"alpha", b"beta", b"gamma", b"delta"]
            box = {}
            # A TCP session closes with its connection (connection_lost),
            # so keep every closed session inspectable.
            closed = []
            original_close = server.manager.close

            def keeping_close(peer, reason="peer"):
                session = original_close(peer, reason=reason)
                if session is not None:
                    closed.append(session)
                return session

            server.manager.close = keeping_close

            def drive():
                client = BlockingArqClient(
                    "127.0.0.1", port, transport=kind, rto=0.3
                )
                box["result"] = client.send_messages(payloads)

            thread = threading.Thread(target=drive)
            thread.start()
            while thread.is_alive():
                await asyncio.sleep(0.01)
            thread.join()
            await asyncio.sleep(0.05)
            sessions = list(server.manager.sessions.values()) + closed
            delivered = [s.app.delivered for s in sessions]
            stats = server.manager.stats()
            await server.close()
            return box["result"], delivered, payloads, stats

        return asyncio.run(main())

    def test_udp_interop(self):
        result, delivered, payloads, stats = self._run("udp")
        assert result["ok"], result
        assert delivered == [payloads]
        assert stats["opened"] == 1

    def test_tcp_interop_with_stream_framing(self):
        # The load-bearing part: over a stream the baseline's bare wire
        # format is ambiguous; the hand-rolled length prefix restores
        # frame boundaries and both ends agree on them.
        result, delivered, payloads, stats = self._run("tcp")
        assert result["ok"], result
        assert delivered == [payloads]
        assert result["acks_seen"] == len(payloads)


# ---------------------------------------------------------------------------
# The soak lane (slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestSoak:
    def test_5000_sessions_shed_at_4000_oldest_idle_first(self):
        h = _Harness(max_sessions=4000, idle_timeout=300.0)
        # 5000 peers arrive in strict order, each stamped by arrival time
        # and carrying a payload naming its peer.
        for index in range(5000):
            h.tick(0.001)
            h.offer(f"peer:{index}", _data_frame(0, b"p%04d" % index))
        stats = h.manager.stats()
        assert stats["active"] == 4000
        assert stats["opened"] == 5000
        assert stats["shed"] == 1000
        assert stats["closed"] == 1000  # every close was a shed
        # Oldest-idle first: exactly the first 1000 arrivals lost their
        # slots (nobody refreshed, so arrival order is idleness order).
        survivors = {int(p.split(":")[1]) for p in h.manager.sessions}
        assert survivors == set(range(1000, 5000))
        # Density bookkeeping: the slab arena equals peak concurrency,
        # not peers-ever-seen.
        assert h.manager.slab.capacity == 4000

    def test_no_session_observes_anothers_frames(self):
        h = _Harness(max_sessions=4000, idle_timeout=300.0)
        peers = [f"peer:{i}" for i in range(5000)]
        for index, peer in enumerate(peers):
            h.tick(0.001)
            h.offer(peer, _data_frame(0, b"A%04d" % index))
        # Interleave a second frame to every survivor, reversed order.
        for index, peer in reversed(list(enumerate(peers))):
            if peer in h.manager.sessions:
                h.offer(peer, _data_frame(1, b"B%04d" % index))
        for peer, session in h.manager.sessions.items():
            index = int(peer.split(":")[1])
            assert session.app.delivered == [
                b"A%04d" % index,
                b"B%04d" % index,
            ], f"cross-session leakage at {peer}"
        # Ack streams stayed per-peer as well.
        for peer, frames in h.sent.items():
            if peer in h.manager.sessions:
                assert len(frames) == 2

    def test_refreshed_sessions_survive_the_flood(self):
        h = _Harness(max_sessions=4000, idle_timeout=300.0)
        keep = [f"keep:{i}" for i in range(50)]
        for peer in keep:
            h.tick(0.001)
            h.offer(peer, _data_frame(0))
        for index in range(4950):
            h.tick(0.001)
            if index % 10 == 0:  # steady traffic on the protected set
                for peer in keep:
                    h.offer(peer, _data_frame(1))
            h.offer(f"flood:{index}", _data_frame(0))
        assert all(peer in h.manager.sessions for peer in keep)
        assert h.manager.stats()["shed"] == 1000  # 5000 offered, 4000 fit

    def test_live_soak_concurrent_clients_over_udp(self):
        # A real-socket soak at a gentler scale: 60 concurrent DSL
        # clients against one recording server, then the differential.
        config = LoopbackConfig(
            protocol="arq",
            clients=60,
            messages=3,
            payload_size=12,
            seed=77,
            rto=0.15,
            client_timeout=30.0,
            check_model=False,  # byte differential only; keeps soak O(n)
        )
        report = run_loopback_sync(config)
        assert report.clients_ok
        assert report.server_stats["opened"] == 60
        assert report.differential is not None and report.differential.ok
