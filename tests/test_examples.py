"""Smoke tests: every shipped example runs end to end.

Examples are documentation; rotting documentation is worse than none.
Each is executed in-process with stdout captured and basic claims about
its output asserted.
"""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["raw packet rejected", "finished consistently"],
    "define_ipv4.py": ["0xB861".lower(), "Figure 1"],
    "arq_over_lossy_net.py": ["fault sweep", "FINISH"],
    "adaptive_streaming.py": ["fuzzy", "static"],
    "untrusted_relay_mesh.py": ["COMPROMISED", "delivery"],
    "verify_arq_pair.py": ["VERIFIED", "livelock"],
    "inline_testing.py": ["all passed", "round-trip mismatch"],
    "observe_arq.py": ["transfer done=True", "exec_trans", "frame#"],
}


def run_example(name: str) -> str:
    from repro import obs

    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        # observe_arq.py switches the process-wide instrumentation on;
        # keep examples isolated from each other and from later tests.
        obs.get_default().reset()
        obs.disable()
    return buffer.getvalue()


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs_and_says_the_right_things(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"
    for marker in EXPECTED_MARKERS[name]:
        assert marker.lower() in output.lower(), (
            f"{name}: expected {marker!r} in output"
        )


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples and smoke tests have drifted apart"
    )
