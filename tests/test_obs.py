"""repro.obs: registry semantics, histograms, spans, JSONL, wiring."""

import json

import pytest

from repro import obs
from repro.core import codec
from repro.core.checker import check_machine
from repro.core.codec import DecodeError
from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import InvalidTransitionError, Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var, this
from repro.netsim import Capture, ChannelConfig, DuplexLink, Node, Simulator, Timer
from repro.obs import (
    NULL_OBS,
    Instrumentation,
    MetricsRegistry,
    Tracer,
    log_buckets,
    profiled,
    render_dashboard,
)
from repro.obs.trace import frame_digest

PKT = PacketSpec(
    "ObsPkt",
    fields=[
        UInt("seq", bits=8),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8),
        Bytes("payload", length=this.length),
    ],
)


def machine_spec():
    spec = MachineSpec("obs_m")
    seq = Param("seq", bits=8)
    ready = spec.state("Ready", params=[seq], initial=True)
    wait = spec.state("Wait", params=[seq])
    sent = spec.state("Sent", params=[seq], final=True)
    n = Var("seq")
    spec.transition("SEND", ready(n), wait(n), requires="bytes")
    spec.transition(
        "OK", wait(n), ready(n + 1), requires=PKT,
        guard=lambda bindings, payload: payload.value.seq == bindings["seq"],
    )
    spec.transition("FINISH", ready(n), sent(n))
    return spec.seal()


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a", x=1) is registry.counter("a", x=1)

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("a", x=1).inc()
        registry.counter("a", x=2).inc(5)
        assert registry.value("a", x=1) == 1
        assert registry.value("a", x=2) == 5

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("a", x=1, y=2).inc()
        assert registry.value("a", y=2, x=1) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("a")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_reset_zeroes_but_keeps_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.value("a") == 1

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["c"][0] == {"labels": {"k": "v"}, "kind": "counter", "value": 3}
        json.dumps(snapshot)  # must not raise


class TestHistogram:
    def test_log_buckets_geometric(self):
        assert log_buckets(1e-6, 4, 3) == (1e-6, 4e-6, 1.6e-5)

    def test_bucketing_places_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one per bucket + overflow

    def test_boundary_lands_in_lower_bucket(self):
        hist = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_stats_and_quantiles(self):
        hist = MetricsRegistry().histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 3.0, 6.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.75)
        assert hist.min == 0.5
        assert hist.max == 6.0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 6.0  # overflow clamped to observed max

    def test_empty_quantile_is_zero(self):
        assert MetricsRegistry().histogram("h").quantile(0.95) == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("h", bounds=(2.0, 1.0))


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf")
        outer, inner, leaf = tracer.records()
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1
        assert leaf.parent_id == inner.span_id and leaf.depth == 2
        assert outer.wall_duration >= inner.wall_duration >= 0

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("s", machine="m"):
            tracer.event("e", k=1)
        restored = Tracer.from_jsonl(tracer.to_jsonl())
        assert [(r.name, r.kind, r.parent_id, r.attrs) for r in restored] == [
            (r.name, r.kind, r.parent_id, r.attrs) for r in tracer.records()
        ]

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.event(f"e{index}")
        assert [r.name for r in tracer.records()] == ["e2", "e3", "e4"]

    def test_virtual_clock_stamps_records(self):
        tracer = Tracer()
        tracer.virtual_clock = lambda: 42.5
        with tracer.span("s"):
            pass
        record = tracer.records()[0]
        assert record.virt_start == 42.5 and record.virt_end == 42.5

    def test_explicit_virt_overrides_clock(self):
        tracer = Tracer()
        tracer.virtual_clock = lambda: 1.0
        assert tracer.event("e", virt=9.0).virt_start == 9.0

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        record = tracer.records()[0]
        assert record.attrs["error"] == "RuntimeError"
        assert record.wall_duration is not None
        tracer.event("after")  # stack is clean: lands at depth 0
        assert tracer.records()[-1].depth == 0

    def test_frame_digest_is_stable(self):
        assert frame_digest(b"abc") == frame_digest(bytearray(b"abc"))
        assert frame_digest(b"abc") != frame_digest(b"abd")


# -- instrumentation context --------------------------------------------------


class TestInstrumentation:
    def test_default_starts_disabled(self):
        assert obs.get_default().enabled is False

    def test_enable_disable_toggle_in_place(self):
        captured = obs.get_default()
        try:
            assert obs.enable() is captured and captured.enabled
        finally:
            obs.disable()
        assert captured.enabled is False

    def test_null_obs_cannot_be_enabled(self):
        with pytest.raises(ValueError):
            NULL_OBS.enabled = True

    def test_set_default_swaps_and_returns_previous(self):
        replacement = Instrumentation(enabled=False)
        previous = obs.set_default(replacement)
        try:
            assert obs.get_default() is replacement
        finally:
            obs.set_default(previous)

    def test_profiled_records_when_enabled(self):
        instr = Instrumentation()

        @profiled("my.fn", obs=instr)
        def double(x):
            return x * 2

        assert double(4) == 8
        assert instr.registry.value("profile.calls", fn="my.fn") == 1
        assert instr.registry.get("profile.seconds", fn="my.fn").count == 1
        assert [r.name for r in instr.tracer.records()] == ["my.fn"]

    def test_profiled_disabled_is_passthrough(self):
        instr = Instrumentation(enabled=False)

        @profiled(obs=instr)
        def triple(x):
            return x * 3

        assert triple(3) == 9
        assert len(instr.registry) == 0 and len(instr.tracer) == 0


# -- machine runtime wiring ---------------------------------------------------


class TestMachineWiring:
    def test_executed_counter_and_phase_spans(self):
        instr = Instrumentation()
        machine = Machine(machine_spec(), obs=instr)
        machine.exec_trans("SEND", b"data")
        assert instr.registry.value(
            "machine.transitions_executed", machine="obs_m", transition="SEND"
        ) == 1
        span = instr.tracer.find("exec_trans")[0]
        assert [c.name for c in instr.tracer.children_of(span)] == [
            "dispatch", "evidence", "guard", "step",
        ]
        assert span.attrs["payload_digest"] == frame_digest(b"data")
        assert span.attrs["bindings"] == {"seq": 0}
        assert instr.registry.get("machine.exec_seconds", machine="obs_m").count == 1

    def test_rejection_reasons_label_counter(self):
        instr = Instrumentation()
        machine = Machine(machine_spec(), obs=instr)

        def rejected(reason, *args, **kwargs):
            with pytest.raises(InvalidTransitionError):
                machine.exec_trans(*args, **kwargs)
            return instr.registry.value(
                "machine.transitions_rejected",
                machine="obs_m", transition=args[0], reason=reason,
            )

        assert rejected("unknown_transition", "NOPE") == 1
        assert rejected("dispatch", "OK", PKT.parse(PKT.encode(
            PKT.make(seq=0, length=1, payload=b"x")))) == 1  # Ready, not Wait
        machine.exec_trans("SEND", b"x")
        assert rejected("evidence", "OK", b"raw-bytes") == 1
        wrong_seq = PKT.parse(PKT.encode(PKT.make(seq=9, length=1, payload=b"x")))
        assert rejected("guard", "OK", wrong_seq) == 1

    def test_verified_payload_digest_matches_wire_frame(self):
        instr = Instrumentation()
        machine = Machine(machine_spec(), obs=instr)
        machine.exec_trans("SEND", b"x")
        wire = PKT.encode(PKT.make(seq=0, length=2, payload=b"ok"))
        machine.exec_trans("OK", PKT.parse(wire))
        span = instr.tracer.find("exec_trans")[-1]
        assert span.attrs["payload_spec"] == "ObsPkt"
        assert span.attrs["payload_digest"] == frame_digest(wire)

    def test_disabled_obs_records_nothing(self):
        instr = Instrumentation(enabled=False)
        machine = Machine(machine_spec(), obs=instr)
        machine.exec_trans("SEND", b"data")
        assert len(instr.registry) == 0 and len(instr.tracer) == 0


# -- codec wiring -------------------------------------------------------------


class TestCodecWiring:
    def test_decode_metrics(self):
        instr = Instrumentation()
        wire = PKT.encode(PKT.make(seq=1, length=2, payload=b"hi"))
        codec.decode_packet(PKT, wire, obs=instr)
        assert instr.registry.value("codec.decoded_packets", spec="ObsPkt") == 1
        assert instr.registry.value("codec.decoded_bytes", spec="ObsPkt") == len(wire)
        assert instr.registry.get("codec.decode_seconds", spec="ObsPkt").count == 1

    def test_decode_error_counter_labeled_by_kind(self):
        instr = Instrumentation()
        with pytest.raises(DecodeError):
            codec.decode_packet(PKT, b"\x01", obs=instr)
        assert instr.registry.value(
            "codec.decode_errors", spec="ObsPkt", kind="DecodeError"
        ) == 1

    def test_encode_metrics(self):
        instr = Instrumentation()
        packet = PKT.make(seq=1, length=2, payload=b"hi")
        wire = codec.encode_verbatim(PKT, packet, obs=instr)
        assert instr.registry.value("codec.encoded_packets", spec="ObsPkt") == 1
        assert instr.registry.value("codec.encoded_bytes", spec="ObsPkt") == len(wire)


# -- checker wiring -----------------------------------------------------------


class TestCheckerWiring:
    def test_pass_timings_and_counters(self):
        instr = Instrumentation()
        spec = MachineSpec("checked")
        spec.state("A", initial=True, final=True)
        report = check_machine(spec, obs=instr)
        assert report.ok
        assert instr.registry.value("checker.machines_checked") == 1
        for check in ("initial_states", "transition_soundness", "reachability"):
            assert instr.registry.get("checker.pass_seconds", check=check).count == 1

    def test_rejection_counted(self):
        instr = Instrumentation()
        spec = MachineSpec("broken")  # no initial state: one error
        report = check_machine(spec, obs=instr)
        assert not report.ok
        assert instr.registry.value("checker.machines_rejected", machine="broken") == 1
        assert instr.registry.value("checker.errors") == len(report.errors)


# -- simulator wiring ---------------------------------------------------------


class TestSimulatorWiring:
    def test_cancelled_events_skipped_not_processed(self):
        sim = Simulator(obs=Instrumentation())
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        doomed = sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(3.0, lambda: fired.append("c"))
        doomed.cancel()
        sim.run()
        assert fired == ["a", "c"]
        assert sim.events_processed == 2
        registry = sim.obs.registry
        assert registry.value("sim.events_scheduled") == 3
        assert registry.value("sim.events_fired") == 2
        assert registry.value("sim.events_cancelled") == 1
        assert registry.value("sim.events_skipped") == 1

    def test_events_pending_excludes_cancelled(self):
        sim = Simulator(obs=Instrumentation())
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.events_pending == 2
        first.cancel()
        assert sim.events_pending == 1
        assert sim.pending == 2  # tombstone still physically in the heap
        assert sim.obs.registry.value("sim.events_pending") == 1
        sim.run()
        assert sim.events_pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator(obs=Instrumentation())
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.events_pending == 0
        assert sim.obs.registry.value("sim.events_cancelled") == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator(obs=Instrumentation())
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.events_pending == 0
        assert sim.obs.registry.value("sim.events_cancelled") == 0

    def test_max_events_budget_ignores_cancelled(self):
        sim = Simulator()
        fired = []
        for index in range(3):
            sim.schedule(float(index + 1), lambda i=index: fired.append(i)).cancel()
        sim.schedule(10.0, lambda: fired.append("live"))
        sim.run(max_events=1)
        assert fired == ["live"]

    def test_simulator_attaches_virtual_clock(self):
        instr = Instrumentation()
        sim = Simulator(obs=instr)
        sim.schedule(2.5, lambda: instr.tracer.event("tick"))
        sim.run()
        assert instr.tracer.records()[0].virt_start == 2.5


# -- channel / timer / capture wiring -----------------------------------------


class TestNetsimWiring:
    def test_channel_fate_counters(self):
        instr = Instrumentation()
        sim = Simulator(obs=instr)
        a, b = Node(sim, "a"), Node(sim, "b")
        DuplexLink(sim, a, b, ChannelConfig(loss_rate=1.0), seed=1)
        a.send("b", b"doomed")
        registry = instr.registry
        assert registry.value("channel.frames", channel="a->b", fate="sent") == 1
        assert registry.value("channel.frames", channel="a->b", fate="dropped") == 1
        assert registry.value("channel.bytes", channel="a->b", fate="sent") == 6
        assert registry.value("channel.frames", channel="a->b", fate="delivered") == 0

    def test_timer_counters(self):
        instr = Instrumentation()
        sim = Simulator(obs=instr)
        timer = Timer(sim, 1.0, lambda: None, name="t")
        timer.start()
        timer.stop()
        timer.start()
        sim.run()
        assert timer.cancels == 1
        registry = instr.registry
        assert registry.value("timer.started", timer="t") == 2
        assert registry.value("timer.cancelled", timer="t") == 1
        assert registry.value("timer.fired", timer="t") == 1

    def test_capture_events_share_tracer_timeline(self):
        instr = Instrumentation()
        sim = Simulator(obs=instr)
        a, b = Node(sim, "a"), Node(sim, "b")
        link = DuplexLink(sim, a, b, ChannelConfig(), seed=1)
        capture = Capture(tracer=instr.tracer)
        capture.tap(link.forward)
        a.send("b", b"hello")
        events = instr.tracer.find("capture.frame")
        assert len(events) == 1
        assert events[0].attrs["digest"] == frame_digest(b"hello")
        assert events[0].virt_start == 0.0

    def test_correlate_joins_frames_to_consuming_spans(self):
        instr = Instrumentation()
        sim = Simulator(obs=instr)
        a, b = Node(sim, "a"), Node(sim, "b")
        link = DuplexLink(sim, a, b, ChannelConfig(), seed=1)
        capture = Capture(specs=[PKT], tracer=instr.tracer)
        capture.tap(link.forward)
        machine = Machine(machine_spec(), obs=instr)
        machine.exec_trans("SEND", b"go")

        def on_receive(frame, sender):
            machine.exec_trans("OK", PKT.parse(frame))

        b.on_receive(on_receive)
        a.send("b", PKT.encode(PKT.make(seq=0, length=2, payload=b"ok")))
        sim.run()
        pairs = capture.correlate()
        assert len(pairs) == 1
        frame, span = pairs[0]
        assert frame.index == 0
        assert span.attrs["transition"] == "OK"
        assert span.virt_start >= frame.time

    def test_correlate_without_tracer_raises(self):
        with pytest.raises(ValueError, match="tracer"):
            Capture().correlate()


# -- report -------------------------------------------------------------------


class TestReport:
    def test_dashboard_renders_all_sections(self):
        instr = Instrumentation()
        machine = Machine(machine_spec(), obs=instr)
        machine.exec_trans("SEND", b"data")
        text = render_dashboard(instr)
        assert "counters" in text and "histograms" in text and "trace" in text
        assert "machine.transitions_executed" in text
        assert "machine.exec_seconds" in text
        assert "exec_trans" in text and "dispatch" in text

    def test_export_json_round_trips(self, tmp_path):
        instr = Instrumentation()
        instr.registry.counter("c").inc()
        with instr.tracer.span("s"):
            pass
        path = tmp_path / "obs.json"
        data = obs.export_json(instr, path=str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(data))
        assert loaded["metrics"]["c"][0]["value"] == 1
        assert loaded["trace"][0]["name"] == "s"
