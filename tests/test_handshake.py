"""The three-way handshake: nonce-indexed states, consistent endings."""

import random

import pytest

from repro.core.machine import InvalidTransitionError, Machine
from repro.netsim.channel import ChannelConfig
from repro.protocols.handshake import (
    HANDSHAKE_PACKET,
    MSG_ACK,
    MSG_SYN,
    MSG_SYN_ACK,
    build_initiator_spec,
    build_responder_spec,
    run_handshake,
)


def verified(msg_type, initiator_nonce, responder_nonce):
    return HANDSHAKE_PACKET.verify(
        HANDSHAKE_PACKET.make(
            msg_type=msg_type,
            initiator_nonce=initiator_nonce,
            responder_nonce=responder_nonce,
        )
    )


class TestInitiatorMachine:
    def test_happy_path(self):
        machine = Machine(build_initiator_spec())
        machine.exec_trans("CONNECT", nonce=42)
        machine.exec_trans("SYNACK", verified(MSG_SYN_ACK, 42, 7))
        assert machine.in_state("Established")
        assert machine.current.values == (42,)

    def test_synack_for_wrong_nonce_rejected(self):
        """The state is indexed by the offered nonce: a stale or forged
        SYN-ACK cannot complete the handshake."""
        machine = Machine(build_initiator_spec())
        machine.exec_trans("CONNECT", nonce=42)
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("SYNACK", verified(MSG_SYN_ACK, 999, 7))

    def test_wrong_message_type_rejected(self):
        machine = Machine(build_initiator_spec())
        machine.exec_trans("CONNECT", nonce=42)
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("SYNACK", verified(MSG_SYN, 42, 0))

    def test_give_up_is_consistent_failure(self):
        machine = Machine(build_initiator_spec())
        machine.exec_trans("CONNECT", nonce=42)
        machine.exec_trans("GIVE_UP")
        assert machine.in_state("Failed")
        assert machine.is_finished


class TestResponderMachine:
    def test_happy_path(self):
        machine = Machine(build_responder_spec())
        machine.exec_trans("SYN", verified(MSG_SYN, 42, 0), nonce=7)
        machine.exec_trans("ACK", verified(MSG_ACK, 42, 7))
        assert machine.in_state("Established")

    def test_ack_with_wrong_nonce_rejected(self):
        machine = Machine(build_responder_spec())
        machine.exec_trans("SYN", verified(MSG_SYN, 42, 0), nonce=7)
        with pytest.raises(InvalidTransitionError, match="guard"):
            machine.exec_trans("ACK", verified(MSG_ACK, 42, 999))

    def test_reset_returns_to_listen(self):
        machine = Machine(build_responder_spec())
        machine.exec_trans("SYN", verified(MSG_SYN, 42, 0), nonce=7)
        machine.exec_trans("RESET")
        assert machine.in_state("Listen")


class TestEndToEnd:
    def test_clean_link_establishes(self):
        report = run_handshake()
        assert report.established
        assert report.initiator_state == "Established"
        assert report.responder_state == "Established"
        assert report.frames_sent == 3

    def test_total_loss_ends_consistently(self):
        report = run_handshake(ChannelConfig(loss_rate=1.0), seed=1)
        assert not report.established
        assert report.initiator_state == "Failed"
        assert report.responder_state == "Listen"

    def test_heavy_corruption_never_establishes_wrongly(self):
        for seed in range(10):
            report = run_handshake(
                ChannelConfig(corruption_rate=0.8), seed=seed
            )
            # Whatever happened, both sides are in *consistent* states:
            assert report.initiator_state in ("Established", "Failed")
            assert report.responder_state in (
                "Established", "SynReceived", "Listen"
            )

    def test_many_seeds_clean_network(self):
        for seed in range(20):
            assert run_handshake(seed=seed).established
