"""Property tests for the simulator's cancel/timer accounting.

The simulator promises exact live-event accounting under any
interleaving of schedule, cancel, and fire:

* ``events_pending`` always equals the number of scheduled-but-unfired,
  uncancelled events;
* cancelled tombstones never consume a ``max_events`` budget slot and
  never count as processed;
* cancelling twice, or cancelling an already-fired event, is a no-op.

Hypothesis drives random interleavings of those operations and checks
the invariants after every step — the regression net for the O(1)
tombstone-cancellation scheme.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.simulator import Simulator

# One step of an interleaving: (op, a, b) where the integers parameterize
# the op (delay choice, victim index, budget size).
_steps = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "cancel", "step", "run_budget", "double_cancel"]),
        st.integers(0, 7),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=60,
)


class _Model:
    """Reference bookkeeping mirrored alongside the real simulator."""

    def __init__(self):
        self.sim = Simulator()
        self.events = []  # every Event ever scheduled, in order
        self.fired = []

    def live(self):
        return [
            e for e in self.events if not e.fired and not e.cancelled
        ]


class TestCancelTimerAccounting:
    @given(steps=_steps)
    @settings(max_examples=200, deadline=None)
    def test_events_pending_matches_reference_model(self, steps):
        model = _Model()
        sim = model.sim
        for op, a, b in steps:
            if op == "schedule":
                event = sim.schedule(a * 0.25, lambda: model.fired.append(None))
                model.events.append(event)
            elif op in ("cancel", "double_cancel"):
                if model.events:
                    victim = model.events[a % len(model.events)]
                    victim.cancel()
                    if op == "double_cancel":
                        victim.cancel()  # must be a no-op
            elif op == "step":
                before = len(model.live())
                progressed = sim.step()
                assert progressed == (before > 0)
            elif op == "run_budget":
                processed_before = sim.events_processed
                live_before = len(model.live())
                sim.run(max_events=b)
                # The budget bounds *executed* events; tombstones skipped
                # along the way never consume a slot.
                executed = sim.events_processed - processed_before
                assert executed == min(b, live_before)
            # The core invariant, after every operation.
            assert sim.events_pending == len(model.live())
            assert sim.events_pending >= 0
            assert sim.events_pending <= sim.pending

    @given(
        delays=st.lists(st.integers(0, 10), min_size=1, max_size=20),
        cancel_mask=st.integers(0, 2**20 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_cancelled_events_never_fire_and_never_bill_the_budget(
        self, delays, cancel_mask
    ):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(d * 0.5, lambda i=i: fired.append(i))
            for i, d in enumerate(delays)
        ]
        cancelled = {
            i for i, e in enumerate(events) if (cancel_mask >> i) & 1
        }
        for i in cancelled:
            events[i].cancel()
        live = len(events) - len(cancelled)
        assert sim.events_pending == live
        # A budget exactly equal to the live count must drain everything:
        # if tombstones billed the budget this would fall short.
        sim.run(max_events=live)
        assert sorted(fired) == sorted(set(range(len(events))) - cancelled)
        assert sim.events_processed == live
        assert sim.events_pending == 0

    @given(budget=st.integers(0, 5), extra=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_max_events_budget_is_exact(self, budget, extra):
        sim = Simulator()
        fired = []
        total = budget + extra
        for i in range(total):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=budget)
        assert len(fired) == min(budget, total)
        assert sim.events_pending == total - len(fired)

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]
        event.cancel()  # already fired: accounting must not go negative
        assert sim.events_pending == 0
        assert sim.pending == 0

    @given(steps=_steps)
    @settings(max_examples=100, deadline=None)
    def test_clock_is_monotone_under_any_interleaving(self, steps):
        model = _Model()
        sim = model.sim
        last = sim.now
        for op, a, b in steps:
            if op == "schedule":
                model.events.append(sim.schedule(a * 0.25, lambda: None))
            elif op in ("cancel", "double_cancel") and model.events:
                model.events[a % len(model.events)].cancel()
            elif op == "step":
                sim.step()
            elif op == "run_budget":
                sim.run(max_events=b)
            assert sim.now >= last
            last = sim.now
