"""Property tests for the simulator's cancel/timer accounting.

The simulator promises exact live-event accounting under any
interleaving of schedule, cancel, and fire:

* ``events_pending`` always equals the number of scheduled-but-unfired,
  uncancelled events;
* cancelled tombstones never consume a ``max_events`` budget slot and
  never count as processed;
* cancelling twice, or cancelling an already-fired event, is a no-op.

Hypothesis drives random interleavings of those operations and checks
the invariants after every step — the regression net for the O(1)
tombstone-cancellation scheme.
"""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.simulator import BudgetExhausted, Simulator

# One step of an interleaving: (op, a, b) where the integers parameterize
# the op (delay choice, victim index, budget size).
_steps = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "cancel", "step", "run_budget", "double_cancel"]),
        st.integers(0, 7),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=60,
)


class _Model:
    """Reference bookkeeping mirrored alongside the real simulator."""

    def __init__(self):
        self.sim = Simulator()
        self.events = []  # every Event ever scheduled, in order
        self.fired = []

    def live(self):
        return [
            e for e in self.events if not e.fired and not e.cancelled
        ]


class TestCancelTimerAccounting:
    @given(steps=_steps)
    @settings(max_examples=200, deadline=None)
    def test_events_pending_matches_reference_model(self, steps):
        model = _Model()
        sim = model.sim
        for op, a, b in steps:
            if op == "schedule":
                event = sim.schedule(a * 0.25, lambda: model.fired.append(None))
                model.events.append(event)
            elif op in ("cancel", "double_cancel"):
                if model.events:
                    victim = model.events[a % len(model.events)]
                    victim.cancel()
                    if op == "double_cancel":
                        victim.cancel()  # must be a no-op
            elif op == "step":
                before = len(model.live())
                progressed = sim.step()
                assert progressed == (before > 0)
            elif op == "run_budget":
                processed_before = sim.events_processed
                live_before = len(model.live())
                sim.run(max_events=b)
                # The budget bounds *executed* events; tombstones skipped
                # along the way never consume a slot.
                executed = sim.events_processed - processed_before
                assert executed == min(b, live_before)
            # The core invariant, after every operation.
            assert sim.events_pending == len(model.live())
            assert sim.events_pending >= 0
            assert sim.events_pending <= sim.pending

    @given(
        delays=st.lists(st.integers(0, 10), min_size=1, max_size=20),
        cancel_mask=st.integers(0, 2**20 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_cancelled_events_never_fire_and_never_bill_the_budget(
        self, delays, cancel_mask
    ):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(d * 0.5, lambda i=i: fired.append(i))
            for i, d in enumerate(delays)
        ]
        cancelled = {
            i for i, e in enumerate(events) if (cancel_mask >> i) & 1
        }
        for i in cancelled:
            events[i].cancel()
        live = len(events) - len(cancelled)
        assert sim.events_pending == live
        # A budget exactly equal to the live count must drain everything:
        # if tombstones billed the budget this would fall short.
        sim.run(max_events=live)
        assert sorted(fired) == sorted(set(range(len(events))) - cancelled)
        assert sim.events_processed == live
        assert sim.events_pending == 0

    @given(budget=st.integers(0, 5), extra=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_max_events_budget_is_exact(self, budget, extra):
        sim = Simulator()
        fired = []
        total = budget + extra
        for i in range(total):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=budget)
        assert len(fired) == min(budget, total)
        assert sim.events_pending == total - len(fired)

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]
        event.cancel()  # already fired: accounting must not go negative
        assert sim.events_pending == 0
        assert sim.pending == 0

    @given(steps=_steps)
    @settings(max_examples=100, deadline=None)
    def test_clock_is_monotone_under_any_interleaving(self, steps):
        model = _Model()
        sim = model.sim
        last = sim.now
        for op, a, b in steps:
            if op == "schedule":
                model.events.append(sim.schedule(a * 0.25, lambda: None))
            elif op in ("cancel", "double_cancel") and model.events:
                model.events[a % len(model.events)].cancel()
            elif op == "step":
                sim.step()
            elif op == "run_budget":
                sim.run(max_events=b)
            assert sim.now >= last
            last = sim.now


# ---------------------------------------------------------------------------
# Slab store vs. the original heap-of-objects semantics
# ---------------------------------------------------------------------------


class _RefEvent:
    """One event record in the reference (pre-slab) implementation."""

    __slots__ = ("time", "sequence", "callback", "cancelled", "fired")

    def __init__(self, time, sequence, callback):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)


class _ReferenceSimulator:
    """The original per-object heap semantics, kept verbatim as the oracle.

    Cancelled events stay in the heap forever (no compaction); skipping a
    tombstone never counts as processing.  The slab simulator must agree
    on fire order, clock, and all live-event accounting — only the
    physical queue size (``pending``) may differ, because the slab
    compacts tombstones away.
    """

    def __init__(self):
        self._heap = []
        self.now = 0.0
        self._sequence = 0
        self.events_processed = 0
        self._cancelled_pending = 0

    @property
    def events_pending(self):
        return len(self._heap) - self._cancelled_pending

    def schedule(self, delay, callback):
        event = _RefEvent(self.now + delay, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event):
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._cancelled_pending += 1

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = event.time
            self.events_processed += 1
            event.fired = True
            event.callback()
            return True
        return False

    def run(self, max_events=None):
        executed = 0
        while max_events is None or executed < max_events:
            if not self.step():
                return
            executed += 1


class TestSlabMatchesReferenceHeap:
    """Differential: every interleaving agrees with the old heap, exactly."""

    @given(steps=_steps)
    @settings(max_examples=200, deadline=None)
    def test_fire_order_and_accounting_identical(self, steps):
        sim = Simulator()
        ref = _ReferenceSimulator()
        sim_fired, ref_fired = [], []
        sim_events, ref_events = [], []
        tag = 0
        for op, a, b in steps:
            if op == "schedule":
                delay = a * 0.25
                sim_events.append(
                    sim.schedule(delay, lambda t=tag: sim_fired.append(t))
                )
                ref_events.append(
                    ref.schedule(delay, lambda t=tag: ref_fired.append(t))
                )
                tag += 1
            elif op in ("cancel", "double_cancel"):
                if sim_events:
                    index = a % len(sim_events)
                    sim_events[index].cancel()
                    ref.cancel(ref_events[index])
                    if op == "double_cancel":
                        sim_events[index].cancel()
                        ref.cancel(ref_events[index])
            elif op == "step":
                assert sim.step() == ref.step()
            elif op == "run_budget":
                sim.run(max_events=b)
                ref.run(max_events=b)
            # Observable state must agree after every operation...
            assert sim_fired == ref_fired
            assert sim.now == ref.now
            assert sim.events_processed == ref.events_processed
            assert sim.events_pending == ref.events_pending
            # ...and the slab's physical queue never exceeds the
            # reference's (compaction only ever sheds tombstones).
            assert sim.pending <= len(ref._heap)
        sim.run()
        ref.run()
        assert sim_fired == ref_fired
        assert sim.now == ref.now
        assert sim.events_pending == ref.events_pending == 0

    @given(steps=_steps)
    @settings(max_examples=100, deadline=None)
    def test_handles_agree_with_reference_records(self, steps):
        sim = Simulator()
        ref = _ReferenceSimulator()
        sim_events, ref_events = [], []
        for op, a, b in steps:
            if op == "schedule":
                sim_events.append(sim.schedule(a * 0.25, lambda: None))
                ref_events.append(ref.schedule(a * 0.25, lambda: None))
            elif op in ("cancel", "double_cancel") and sim_events:
                index = a % len(sim_events)
                sim_events[index].cancel()
                ref.cancel(ref_events[index])
            elif op == "step":
                sim.step()
                ref.step()
            elif op == "run_budget":
                sim.run(max_events=b)
                ref.run(max_events=b)
            # Every handle ever issued — pending, fired, cancelled,
            # compacted, slot-recycled — answers like the old object did.
            for ours, theirs in zip(sim_events, ref_events):
                assert ours.time == theirs.time
                assert ours.sequence == theirs.sequence
                assert ours.cancelled == theirs.cancelled
                assert ours.fired == theirs.fired


class TestTombstoneCompaction:
    def test_cancel_reschedule_churn_keeps_heap_bounded(self):
        """The OLSR-retransmit pattern: schedule, cancel, reschedule, forever.

        Pre-compaction, every cancelled event sat in the heap until its
        time surfaced — a tight restart loop grew the heap without bound.
        Now tombstones are compacted whenever they outnumber live events,
        so the queue stays within a small constant of the live count.
        """
        sim = Simulator()
        live = None
        for i in range(10_000):
            if live is not None:
                live.cancel()
            live = sim.schedule(1000.0 + i * 0.001, lambda: None)
            assert sim.events_pending == 1
            assert sim.pending <= 3  # 1 live + at most 1 tombstone + slack
        assert sim.compactions > 0
        assert sim.slab_capacity <= 4  # slots recycled, not accumulated
        fired = []
        sim.schedule(0.5, lambda: fired.append("first"))
        sim.run(max_events=2)
        assert fired == ["first"]
        assert sim.events_processed == 2
        assert sim.events_pending == 0

    def test_mass_cancel_compacts_immediately(self):
        sim = Simulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(1000)]
        survivor = sim.schedule(2000.0, lambda: None)
        for event in events:
            event.cancel()
        # Tombstones outnumber the single live event by far: compaction
        # must have shed them from the physical queue.
        assert sim.events_pending == 1
        assert sim.pending < 500
        sim.run()
        assert survivor.fired
        assert sim.events_processed == 1

    def test_compaction_preserves_fire_order(self):
        sim = Simulator()
        fired = []
        keep = [sim.schedule(float(i), lambda i=i: fired.append(i)) for i in range(20)]
        doomed = [sim.schedule(0.5 + i, lambda: fired.append(-1)) for i in range(30)]
        for event in doomed:
            event.cancel()
        sim.run()
        assert fired == list(range(20))
        assert all(e.fired for e in keep)
        assert all(e.cancelled and not e.fired for e in doomed)


class TestRunUntilBudget:
    def test_exhaustion_with_pending_events_raises(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(BudgetExhausted) as excinfo:
            sim.run_until(lambda: False, max_events=25)
        assert excinfo.value.max_events == 25
        assert excinfo.value.events_pending == 1
        assert sim.events_processed == 25

    def test_drained_queue_returns_false(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run_until(lambda: False, max_events=100) is False
        assert sim.events_pending == 0

    def test_predicate_satisfied_on_last_budgeted_event(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        assert sim.run_until(lambda: len(count) >= 5, max_events=5) is True
